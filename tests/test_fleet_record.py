"""The fleetrec/v1 binary codec: lossless, canonical, framed."""

import json
import math
import random
import struct

import pytest

from repro.fleet.record import (
    FLEETREC_SCHEMA,
    MAGIC,
    FleetRecordError,
    decode_value,
    dumps_record,
    encode_value,
    iter_fleet_records,
    loads_record,
    read_fleet_file,
    write_fleet_file,
)
from repro.rand import derive_seed


def random_value(rng, depth=0):
    """One random JSON-model value (bounded depth)."""
    kinds = ["null", "bool", "int", "bigint", "float", "str"]
    if depth < 3:
        kinds += ["list", "dict"]
    kind = kinds[rng.randrange(len(kinds))]
    if kind == "null":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        return rng.randrange(-2 ** 63, 2 ** 63)
    if kind == "bigint":
        return rng.randrange(2 ** 80) - 2 ** 79
    if kind == "float":
        return rng.uniform(-1e12, 1e12)
    if kind == "str":
        return "".join(chr(rng.randrange(32, 0x2FFF))
                       for _ in range(rng.randrange(8)))
    if kind == "list":
        return [random_value(rng, depth + 1)
                for _ in range(rng.randrange(4))]
    return {f"k{i}": random_value(rng, depth + 1)
            for i in range(rng.randrange(4))}


class TestValueRoundTrip:
    def test_seeded_property_round_trip(self):
        """200 random JSON-model values survive encode/decode exactly."""
        rng = random.Random(derive_seed(0, "fleetrec-property"))
        for _ in range(200):
            value = random_value(rng)
            assert decode_value(encode_value(value)) == value

    @pytest.mark.parametrize("value", [
        None, True, False, 0, -1, 2 ** 63 - 1, -(2 ** 63), 2 ** 100,
        -(2 ** 100), 0.0, -0.0, 1.5, math.inf, -math.inf, 1e-310,
        "", "ascii", "ünïcödé ☃", [], [1, [2, [3]]], {},
        {"nested": {"deep": [None, True, {"x": 1.25}]}},
    ])
    def test_edge_values(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_negative_zero_is_bit_exact(self):
        decoded = decode_value(encode_value(-0.0))
        assert math.copysign(1.0, decoded) == -1.0

    def test_float_bit_exactness(self):
        """IEEE-754 bits survive — no decimal round-trip mangling."""
        rng = random.Random(derive_seed(1, "fleetrec-bits"))
        for _ in range(100):
            bits = rng.getrandbits(64)
            (value,) = struct.unpack(">d", struct.pack(">Q", bits))
            if math.isnan(value):
                continue
            decoded = decode_value(encode_value(value))
            assert struct.pack(">d", decoded) == struct.pack(">d", value)

    def test_nan_rejected(self):
        with pytest.raises(FleetRecordError):
            encode_value(math.nan)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(FleetRecordError):
            encode_value({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(FleetRecordError):
            encode_value(object())

    def test_canonical_key_order(self):
        """Equal dicts encode to identical bytes regardless of insertion
        order — the whole-file determinism guarantee rests on this."""
        a = encode_value({"b": 1, "a": 2, "c": 3})
        b = encode_value({"c": 3, "a": 2, "b": 1})
        assert a == b

    def test_json_equivalence(self):
        """A record that went through the binary codec serialises to the
        same JSON as the original (lossless round-trip to JSON forms)."""
        record = {"schema": FLEETREC_SCHEMA, "alarm_time": 17.25,
                  "verdict": "true_alarm", "onset": None, "index": 3,
                  "benign": False, "nested": {"values": [1, 2.5, "x"]}}
        rebuilt = decode_value(encode_value(record))
        assert json.dumps(rebuilt, sort_keys=True) == \
            json.dumps(record, sort_keys=True)


class TestFraming:
    def test_record_frame_round_trip(self):
        record = {"kind": "device", "index": 0, "score": 0.75}
        assert loads_record(dumps_record(record)) == record

    def test_trailing_bytes_rejected(self):
        with pytest.raises(FleetRecordError):
            decode_value(encode_value(1) + b"x")

    def test_truncated_value_rejected(self):
        encoded = encode_value({"k": "value"})
        with pytest.raises(FleetRecordError):
            decode_value(encoded[:-2])

    def test_bad_frame_length_rejected(self):
        frame = dumps_record({"a": 1})
        with pytest.raises(FleetRecordError):
            loads_record(frame + b"x")
        with pytest.raises(FleetRecordError):
            loads_record(frame[:3])

    def test_unknown_tag_rejected(self):
        with pytest.raises(FleetRecordError):
            decode_value(b"Z")

    def test_non_dict_record_rejected(self):
        payload = encode_value([1, 2])
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(FleetRecordError):
            loads_record(frame)


class TestFleetFile:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "fleet.fleetrec"
        header = {"devices": 2, "seed": 7}
        records = [{"kind": "device", "index": 0, "alarm_time": 17.25},
                   {"kind": "device", "index": 1, "alarm_time": None}]
        written = write_fleet_file(path, header, records)
        assert written == path.stat().st_size
        loaded_header, loaded = read_fleet_file(path)
        assert loaded == records
        assert loaded_header["devices"] == 2
        assert loaded_header["kind"] == "plan"
        assert loaded_header["schema"] == FLEETREC_SCHEMA

    def test_magic_enforced(self, tmp_path):
        path = tmp_path / "bogus.bin"
        path.write_bytes(b"not a fleet file")
        with pytest.raises(FleetRecordError):
            list(iter_fleet_records(path))

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "fleet.fleetrec"
        write_fleet_file(path, {"devices": 1}, [{"kind": "device",
                                                 "index": 0}])
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(FleetRecordError):
            list(iter_fleet_records(path))

    def test_missing_header_detected(self, tmp_path):
        path = tmp_path / "fleet.fleetrec"
        path.write_bytes(MAGIC)
        with pytest.raises(FleetRecordError):
            read_fleet_file(path)

    def test_wrong_first_record_kind_detected(self, tmp_path):
        path = tmp_path / "fleet.fleetrec"
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(dumps_record({"kind": "device", "index": 0}))
        with pytest.raises(FleetRecordError):
            read_fleet_file(path)
