#!/usr/bin/env python
"""The entropy-augmented defense (the SSD-Insider++ direction).

Shows the content-aware hybrid detector side by side with the header-only
one on the workload that separates them: a defragmenter.  Its block-level
behaviour — sustained read-then-overwrite of long runs — is exactly what
the behavioural features flag, and it is NOT part of the paper's Table I
training set, so the header-only tree false-alarms.  The hybrid samples
write payloads as they stream through the firmware and vetoes positives
whose content is clearly not ciphertext, while still catching a real
(ciphertext-writing) attack through the same gate.

Run:  python examples/hybrid_defense.py
"""

from __future__ import annotations

from repro.core.entropy import HybridDetector
from repro.core.pretrained import default_tree
from repro.fs.ransomfs import encrypt
from repro.ssd import SSDConfig, SimulatedSSD
from repro.ssd.smart import HostCommand, HostCommandInterface

USER_CONTENT = b"Meeting notes, action items, budget table. " * 100


def defragment(ssd: SimulatedSSD, blocks: int, start_time: float) -> float:
    """Read long runs and rewrite them with their own (plain) content."""
    now = start_time
    for base in range(0, blocks - 120, 120):
        for lba in range(base, base + 120):
            ssd.read(lba, now=now)
            now += 0.0008
        for lba in range(base, base + 120):
            ssd.write(lba, USER_CONTENT, now=now)
            now += 0.0008
    return now


def encrypt_everything(ssd: SimulatedSSD, blocks: int, start_time: float,
                       key: bytes) -> float:
    """A ransomware's version of the same loop: rewrite with ciphertext."""
    ciphertext = encrypt(USER_CONTENT, key)
    now = start_time
    for base in range(0, blocks - 120, 120):
        if ssd.alarm_raised:
            break
        for lba in range(base, base + 120):
            ssd.read(lba, now=now)
            now += 0.0008
        for lba in range(base, base + 120):
            ssd.write(lba, ciphertext, now=now)
            now += 0.0008
    return now


def build_device(tree) -> SimulatedSSD:
    from repro.nand.geometry import NandGeometry

    # Queue provisioned Table-III-style for the expected attack rate.
    config = SSDConfig(
        geometry=NandGeometry(channels=2, ways=4, blocks_per_chip=128,
                              pages_per_block=64),
        queue_capacity=6000,
    )
    ssd = SimulatedSSD(config, tree=tree)
    for lba in range(4000):
        ssd.write(lba, USER_CONTENT, now=0.002 * lba)
    ssd.tick(30.0)
    return ssd


def main() -> None:
    base_tree = default_tree()

    print("=== defragmentation under the header-only detector ===")
    plain = build_device(base_tree)
    defragment(plain, 4000, 30.0)
    plain.tick(45.0)
    print(f"alarm raised: {plain.alarm_raised}  "
          f"(a false alarm - defrag is benign)")

    print("\n=== defragmentation under the entropy-gated hybrid ===")
    hybrid = HybridDetector(default_tree())
    gated = build_device(hybrid)
    defragment(gated, 4000, 30.0)
    gated.tick(45.0)
    print(f"alarm raised: {gated.alarm_raised}  "
          f"(suppressed {hybrid.suppressed} low-entropy positives)")

    print("\n=== a real attack under the same hybrid ===")
    hybrid2 = HybridDetector(default_tree())
    attacked = build_device(hybrid2)
    encrypt_everything(attacked, 4000, 30.0, key=b"k" * 32)
    attacked.tick(attacked.clock.now + 2.0)
    print(f"alarm raised: {attacked.alarm_raised}  (ciphertext clears the gate)")
    host = HostCommandInterface(attacked)
    details = host.execute(HostCommand.ALARM_DETAILS)
    print(f"alarm details: score {details.data['score']}, "
          f"device read-only: {details.data['read_only']}")
    recovery = host.execute(HostCommand.APPROVE_RECOVERY)
    print(f"recovered: {recovery.data['mapping_updates']} mapping updates")
    audit = attacked.read(0)
    print(f"block 0 restored to user content: "
          f"{audit[:13] == USER_CONTENT[:13]}")


if __name__ == "__main__":
    main()
