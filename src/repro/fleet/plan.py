"""Fleet planning: one seed deterministically expands into N device runs.

The reproducibility contract (documented operator-facing in
``docs/fleet.md``) is:

* :meth:`FleetPlan.device_spec` is a **pure function** of
  ``(fleet_seed, index)`` — it never consults global state, the other
  devices, or the shard layout.  Device 1234 of a million-device fleet can
  be re-derived alone, in any process, years later.
* Every stream of randomness is derived through
  :func:`repro.rand.derive_seed` with a distinct label path
  (``fleet-id``, ``fleet-draw``, ``fleet-run``), so adding a knob never
  perturbs an existing one.
* The scenario catalog is referenced *by name*; a
  :class:`ScenarioMix` holds ``(name, weight)`` pairs and resolves them
  lazily so a plan can be shipped to worker processes as a plain dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.rand import derive_rng, derive_seed
from repro.workloads.catalog import TESTING_SCENARIOS, TRAINING_SCENARIOS
from repro.workloads.scenario import Scenario

#: Default logical span of each fleet device, in 4-KB blocks.  Smaller
#: than the single-device experiments' 120k: a fleet trades per-device
#: fidelity for population size (docs/fleet.md discusses the trade).
DEFAULT_NUM_LBAS = 12_000

#: Default per-device simulated run length in seconds.
DEFAULT_DURATION = 30.0

#: Default fraction of app-bearing devices that run the benign variant
#: (sample withheld) — these devices measure the population FAR.
DEFAULT_BENIGN_FRACTION = 0.5

#: Hex digits in a device id (48 bits — collision-free in practice for
#: fleets far beyond a million devices).
DEVICE_ID_DIGITS = 12


def _catalog_by_name() -> Dict[str, Scenario]:
    """All named Table I scenarios, training and testing."""
    return {s.name: s for s in (*TRAINING_SCENARIOS, *TESTING_SCENARIOS)}


@dataclass(frozen=True)
class ScenarioMix:
    """A weighted mix of named catalog scenarios.

    Names are resolved lazily (:meth:`resolve`), not at construction:
    a mix travels to worker processes as plain data, and an unknown name
    surfaces as a *contained* per-device error record rather than sinking
    the fleet.  Operator-facing validation happens once, up front, via
    :meth:`validate` (the CLI calls it).
    """

    entries: Tuple[Tuple[str, float], ...]

    #: Named presets accepted by :meth:`parse`.
    PRESETS = ("testing", "training", "all")

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError("scenario mix cannot be empty")
        for name, weight in self.entries:
            if weight <= 0:
                raise WorkloadError(
                    f"scenario mix weight for {name!r} must be positive, "
                    f"got {weight}"
                )

    @classmethod
    def parse(cls, spec: str) -> "ScenarioMix":
        """Parse a mix spec string.

        Accepted forms::

            testing                      # preset: the Table I testing rows
            training                     # preset: the training rows
            all                          # preset: both matrices
            name,name2                   # uniform over the listed scenarios
            name:3,name2:1               # explicit weights
        """
        spec = spec.strip()
        if not spec:
            raise WorkloadError("empty scenario mix spec")
        if spec in ("testing", "all", "training"):
            pool = {
                "testing": TESTING_SCENARIOS,
                "training": TRAINING_SCENARIOS,
                "all": (*TRAINING_SCENARIOS, *TESTING_SCENARIOS),
            }[spec]
            return cls(tuple((s.name, 1.0) for s in pool))
        entries: List[Tuple[str, float]] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" in part:
                name, _, weight_text = part.partition(":")
                try:
                    weight = float(weight_text)
                except ValueError:
                    raise WorkloadError(
                        f"bad weight {weight_text!r} in mix entry {part!r}"
                    ) from None
            else:
                name, weight = part, 1.0
            entries.append((name.strip(), weight))
        return cls(tuple(entries))

    def names(self) -> List[str]:
        """The scenario names in the mix, in entry order."""
        return [name for name, _ in self.entries]

    def resolve(self, name: str) -> Scenario:
        """Look one scenario up by name (raises on unknown names)."""
        catalog = _catalog_by_name()
        if name not in catalog:
            raise WorkloadError(
                f"unknown scenario {name!r} (catalog has "
                f"{len(catalog)} named scenarios)"
            )
        return catalog[name]

    def validate(self) -> None:
        """Fail fast on names the catalog does not know."""
        for name, _ in self.entries:
            self.resolve(name)

    def draw(self, rng) -> str:
        """Weighted draw of one scenario name from ``rng``.

        Uses a single ``rng.random()`` sample against cumulative weights,
        so the draw consumes a fixed amount of the stream regardless of
        mix size — a prerequisite for per-device purity.
        """
        total = sum(weight for _, weight in self.entries)
        point = float(rng.random()) * total
        cumulative = 0.0
        for name, weight in self.entries:
            cumulative += weight
            if point < cumulative:
                return name
        return self.entries[-1][0]

    def to_spec(self) -> str:
        """A string :meth:`parse` accepts that rebuilds this mix."""
        return ",".join(f"{name}:{weight:g}" for name, weight in self.entries)


@dataclass(frozen=True)
class DeviceSpec:
    """One fleet device, fully determined by ``(fleet_seed, index)``.

    Attributes:
        index: Position in the fleet (0-based); the unit of sharding.
        device_id: Stable hex identifier derived from the fleet seed —
            the name operators grep logs and triage queues for.
        scenario: Catalog scenario name this device replays.
        seed: The device's own root seed; scenario build and payload
            generation derive from it and nothing else.
        benign: True when the sample is withheld (FAR-measurement run).
    """

    index: int
    device_id: str
    scenario: str
    seed: int
    benign: bool

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (embedded in fleet records)."""
        return {
            "index": self.index,
            "device_id": self.device_id,
            "scenario": self.scenario,
            "seed": self.seed,
            "benign": self.benign,
        }


@dataclass(frozen=True)
class FleetPlan:
    """Everything a fleet run needs, shippable as a plain dict.

    Attributes:
        devices: Fleet size.
        seed: The fleet seed — the single number the whole population
            derives from.
        mix: Scenario mix devices draw from.
        benign_fraction: Probability an app-bearing device runs benign
            (its scenario's sample withheld) to measure FAR.
        num_lbas: Logical span of each device's scenario.
        duration: Per-device simulated run length (seconds).
        queue_capacity: Recovery-queue entries per device; ``None`` (the
            default) lets the device provision half its over-provisioned
            pages, which keeps pinning from starving GC on small fleet
            geometries.
    """

    devices: int
    seed: int = 0
    mix: ScenarioMix = field(
        default_factory=lambda: ScenarioMix.parse("testing"))
    benign_fraction: float = DEFAULT_BENIGN_FRACTION
    num_lbas: int = DEFAULT_NUM_LBAS
    duration: float = DEFAULT_DURATION
    queue_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise WorkloadError(
                f"fleet needs at least one device, got {self.devices}"
            )
        if not (0.0 <= self.benign_fraction <= 1.0):
            raise WorkloadError(
                f"benign_fraction must be in [0, 1], "
                f"got {self.benign_fraction}"
            )
        if self.num_lbas < 1_000:
            raise WorkloadError(
                f"num_lbas below 1000 leaves no room for a scenario, "
                f"got {self.num_lbas}"
            )
        if self.duration <= 0:
            raise WorkloadError(
                f"duration must be positive, got {self.duration}"
            )

    def validate(self) -> None:
        """Operator-facing early validation (unknown scenario names)."""
        self.mix.validate()

    # -- the reproducibility contract --------------------------------------

    def device_id(self, index: int) -> str:
        """The stable hex id of device ``index``."""
        raw = derive_seed(self.seed, "fleet-id", str(index))
        return format(raw, "016x")[:DEVICE_ID_DIGITS]

    def device_spec(self, index: int) -> DeviceSpec:
        """Derive device ``index`` — pure in ``(self.seed, index)``.

        The draw RNG is keyed by the *index*, the run seed by the
        resulting *device id*: an operator holding only a triage queue
        entry (id + fleet seed) can reproduce the run without knowing the
        index, via :meth:`find_device`.
        """
        if not (0 <= index < self.devices):
            raise WorkloadError(
                f"device index {index} outside fleet of {self.devices}"
            )
        device_id = self.device_id(index)
        rng = derive_rng(self.seed, "fleet-draw", str(index))
        scenario_name = self.mix.draw(rng)
        benign = False
        catalog = _catalog_by_name()
        scenario = catalog.get(scenario_name)
        has_app = scenario.app is not None if scenario is not None else False
        # Burn the benign draw unconditionally so the stream layout (and
        # therefore every later draw) never depends on catalog contents.
        benign_draw = float(rng.random())
        if has_app and benign_draw < self.benign_fraction:
            benign = True
        return DeviceSpec(
            index=index,
            device_id=device_id,
            scenario=scenario_name,
            seed=derive_seed(self.seed, "fleet-run", device_id),
            benign=benign,
        )

    def specs(self) -> Iterator[DeviceSpec]:
        """All device specs, in index order."""
        for index in range(self.devices):
            yield self.device_spec(index)

    def find_device(self, id_prefix: str) -> DeviceSpec:
        """Re-derive a device from an id (or unique id prefix).

        Linear in fleet size — fine for operator use ("re-run device
        7f3 alone"); raises when the prefix is unknown or ambiguous.
        """
        prefix = id_prefix.strip().lower()
        if not prefix:
            raise WorkloadError("empty device id")
        matches: List[int] = []
        for index in range(self.devices):
            if self.device_id(index).startswith(prefix):
                matches.append(index)
                if len(matches) > 1:
                    break
        if not matches:
            raise WorkloadError(
                f"no device with id prefix {id_prefix!r} in this fleet"
            )
        if len(matches) > 1:
            raise WorkloadError(
                f"device id prefix {id_prefix!r} is ambiguous"
            )
        return self.device_spec(matches[0])

    def shard_indices(self, shards: int) -> List[List[int]]:
        """Round-robin partition of device indices into ``shards`` lists."""
        if shards < 1:
            raise WorkloadError(f"shards must be >= 1, got {shards}")
        buckets: List[List[int]] = [[] for _ in range(shards)]
        for index in range(self.devices):
            buckets[index % shards].append(index)
        return buckets

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (the fleet file's header record)."""
        return {
            "devices": self.devices,
            "seed": self.seed,
            "mix": self.mix.to_spec(),
            "benign_fraction": self.benign_fraction,
            "num_lbas": self.num_lbas,
            "duration": self.duration,
            "queue_capacity": self.queue_capacity,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FleetPlan":
        """Rebuild a plan from its :meth:`to_dict` form."""
        return cls(
            devices=int(payload["devices"]),  # type: ignore[arg-type]
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            mix=ScenarioMix.parse(str(payload["mix"])),
            benign_fraction=float(payload["benign_fraction"]),  # type: ignore[arg-type]
            num_lbas=int(payload["num_lbas"]),  # type: ignore[arg-type]
            duration=float(payload["duration"]),  # type: ignore[arg-type]
            queue_capacity=(
                None if payload.get("queue_capacity") is None
                else int(payload["queue_capacity"])  # type: ignore[arg-type]
            ),
        )


def scenario_category(name: str) -> str:
    """Catalog category of a scenario name ('unknown' when absent)."""
    scenario = _catalog_by_name().get(name)
    return scenario.category if scenario is not None else "unknown"
