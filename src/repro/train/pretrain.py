"""Regenerate the bundled pretrained detector tree.

Run:  python -m repro.train.pretrain [candidates]

Trains several ID3 candidates on the Table I training matrix, selects the
best against the stress-validation suite (training samples only, including
artificially slowed variants), and writes the winner to
``repro/core/pretrained_tree.json``.  Takes a few minutes.
"""

from __future__ import annotations

import sys

from repro.core.pretrained import PRETRAINED_PATH, clear_cache
from repro.rand import DEFAULT_SEED
from repro.train.trainer import train_validated_tree
from repro.workloads.catalog import training_scenarios


def main(candidates: int = 8) -> None:
    """Train, select, and persist the default tree."""
    tree, scores = train_validated_tree(
        training_scenarios(), seed=DEFAULT_SEED, candidates=candidates
    )
    print("candidate validation scores (lower is better):")
    for index, score in enumerate(scores):
        marker = " <- selected" if score == min(scores) else ""
        print(f"  candidate {index}: {score:.3f}{marker}")
    tree.save(PRETRAINED_PATH)
    clear_cache()
    print(f"\nwrote {PRETRAINED_PATH}")
    print(tree.describe())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
