"""ID3 decision tree: entropy, fitting, prediction, persistence."""

import numpy as np
import pytest

from repro.core.id3 import DecisionTree, entropy, information_gain
from repro.errors import NotFittedError, TrainingError

NAMES = ("a", "b")


def fit(features, labels, **kwargs):
    kwargs.setdefault("feature_names", NAMES)
    kwargs.setdefault("min_samples_split", 2)
    kwargs.setdefault("min_samples_leaf", 1)
    return DecisionTree(**kwargs).fit(features, labels)


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.array([1, 1, 1])) == 0.0
        assert entropy(np.array([0, 0])) == 0.0

    def test_balanced_is_one_bit(self):
        assert entropy(np.array([0, 1, 0, 1])) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert entropy(np.array([])) == 0.0

    def test_information_gain_perfect_split(self):
        labels = np.array([0, 0, 1, 1])
        mask = np.array([True, True, False, False])
        assert information_gain(labels, mask) == pytest.approx(1.0)

    def test_information_gain_useless_split(self):
        labels = np.array([0, 1, 0, 1])
        mask = np.array([True, True, False, False])  # 50/50 on both sides
        assert information_gain(labels, mask) == pytest.approx(0.0)


class TestFit:
    def test_learns_threshold(self):
        X = [[0.0, 0], [1.0, 0], [2.0, 0], [10.0, 0], [11.0, 0], [12.0, 0]]
        y = [0, 0, 0, 1, 1, 1]
        tree = fit(X, y)
        assert tree.predict_one([1.5, 0]) == 0
        assert tree.predict_one([11.5, 0]) == 1
        assert tree.depth() == 1

    def test_learns_conjunction(self):
        X = [[a, b] for a in (0, 1) for b in (0, 1) for _ in range(3)]
        y = [1 if (a == 1 and b == 1) else 0 for a, b, in
             [(row[0], row[1]) for row in X]]
        tree = fit(X, y)
        assert tree.predict_one([1, 1]) == 1
        assert tree.predict_one([1, 0]) == 0
        assert tree.predict_one([0, 1]) == 0

    def test_pure_dataset_single_leaf(self):
        tree = fit([[1, 2], [3, 4]], [0, 0])
        assert tree.root.is_leaf
        assert tree.node_count() == 1

    def test_depth_cap_respected(self):
        rng = np.random.default_rng(0)
        X = rng.random((200, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        tree = fit(X.tolist(), y.tolist(), max_depth=2)
        assert tree.depth() <= 2

    def test_min_samples_leaf_blocks_tiny_leaves(self):
        X = [[float(i), 0.0] for i in range(20)]
        y = [0] * 19 + [1]  # one outlier
        tree = fit(X, y, min_samples_leaf=5)
        # The outlier cannot get its own leaf; majority wins.
        assert tree.predict_one([19.0, 0.0]) == 0

    def test_training_accuracy_high_on_separable(self):
        rng = np.random.default_rng(1)
        X0 = rng.normal(0, 1, (50, 2))
        X1 = rng.normal(6, 1, (50, 2))
        X = np.vstack([X0, X1]).tolist()
        y = [0] * 50 + [1] * 50
        tree = fit(X, y)
        assert tree.accuracy(X, y) >= 0.98

    def test_collapses_redundant_split(self):
        # Both children would predict 0: the node must fold to a leaf.
        X = [[0.0, 0], [1.0, 0], [2.0, 0], [3.0, 0], [4.0, 1]]
        y = [0, 0, 0, 0, 0]
        tree = fit(X, y)
        assert tree.node_count() == 1


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(TrainingError):
            fit([], [])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(TrainingError):
            fit([[1, 2]], [0, 1])

    def test_rejects_wrong_feature_count(self):
        with pytest.raises(TrainingError):
            fit([[1, 2, 3]], [0])

    def test_rejects_nonbinary_labels(self):
        with pytest.raises(TrainingError):
            fit([[1, 2], [3, 4]], [0, 2])

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTree(feature_names=NAMES).predict_one([0, 0])

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(TrainingError):
            DecisionTree(max_depth=0)
        with pytest.raises(TrainingError):
            DecisionTree(min_samples_split=1)
        with pytest.raises(TrainingError):
            DecisionTree(min_samples_leaf=0)


class TestPersistence:
    def test_roundtrip_preserves_predictions(self, tmp_path):
        rng = np.random.default_rng(2)
        X = rng.random((100, 2)).tolist()
        y = [int(a > 0.5) for a, _ in X]
        tree = fit(X, y)
        path = tmp_path / "tree.json"
        tree.save(path)
        loaded = DecisionTree.load(path)
        assert loaded.predict(X) == tree.predict(X)
        assert loaded.feature_names == list(NAMES)

    def test_describe_mentions_features(self):
        tree = fit([[0.0, 0], [10.0, 0]] * 3, [0, 1] * 3)
        assert "a <=" in tree.describe()
        assert "RANSOMWARE" in tree.describe() or "benign" in tree.describe()

    def test_to_dict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTree(feature_names=NAMES).to_dict()
