#!/usr/bin/env python
"""Train, inspect, persist and evaluate a custom ID3 detector.

Walks the full detection pipeline the way the paper's authors did:
build a labelled per-slice dataset from the Table I *training* matrix,
fit the ID3 tree, print it, save/reload it, and score it against the
*testing* matrix (unknown ransomware only) at every threshold.

Run:  python examples/train_custom_detector.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.id3 import DecisionTree
from repro.train import build_dataset, evaluate_accuracy, train_tree
from repro.workloads import testing_scenarios, training_scenarios


def main() -> None:
    # 1. Dataset: one labelled six-feature row per time slice.
    dataset = build_dataset(
        training_scenarios(), seed=3, duration=60.0, runs_per_scenario=2
    )
    print(
        f"dataset: {len(dataset)} slices, "
        f"{dataset.positives} ransomware-active ({dataset.positives/len(dataset):.0%})"
    )

    # 2. Train the firmware-sized binary decision tree (ID3).
    tree = train_tree(dataset)
    print(f"\ntrained tree: depth {tree.depth()}, {tree.node_count()} nodes")
    print(tree.describe())

    # 3. Persist and reload — the artefact a firmware build would embed.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "detector.json"
        tree.save(path)
        reloaded = DecisionTree.load(path)
        print(f"\nsaved {path.stat().st_size} bytes; reload OK "
              f"({reloaded.node_count()} nodes)")

    # 4. Evaluate on unknown ransomware (the testing matrix).
    curves = evaluate_accuracy(
        testing_scenarios(), tree, repetitions=2, seed=17, duration=60.0
    )
    print("\nFAR/FRR at the paper's threshold (3):")
    for category, points in sorted(curves.items()):
        point = next(p for p in points if p.threshold == 3)
        print(f"  {category:18s} FAR={point.far:.0%}  FRR={point.frr:.0%}")


if __name__ == "__main__":
    main()
