"""The real-time detector: Algorithm 1 of the paper, end to end.

Feed it every I/O request header; it maintains the counting table, closes a
time slice whenever the timestamps cross a slice boundary, evaluates the
six features, runs the ID3 tree, slides the score window, and raises the
alarm once the score reaches the threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Union

from repro.blockdev.request import IORequest
from repro.core.config import DetectorConfig
from repro.core.counting_table import CountingTable
from repro.core.features import FeatureVector, compute_features
from repro.core.id3 import DecisionTree
from repro.core.score import ScoreTracker
from repro.core.window import SliceStats, SlidingWindow
from repro.obs import Observability


@dataclass(frozen=True)
class DetectionEvent:
    """One closed slice's outcome: features, verdict, and window score."""

    time: float
    slice_index: int
    features: FeatureVector
    verdict: int
    score: int
    alarm: bool


class RansomwareDetector:
    """Header-only behavioural ransomware detector (Algorithm 1).

    Args:
        tree: A trained ID3 tree; defaults to the library's pretrained tree.
        config: Slice/window/threshold parameters.
        on_alarm: Optional callback invoked once, with the triggering
            :class:`DetectionEvent`, when the score first reaches the
            threshold.
        keep_history: Record every :class:`DetectionEvent` in
            :attr:`events` (on by default; disable for long streams).
        max_history: With ``keep_history``, bound :attr:`events` to the
            most recent ``max_history`` entries (drop-oldest ring;
            :attr:`dropped_events` counts evictions) so always-on history
            in long sweeps cannot grow without bound.
        obs: Observability bundle; when enabled, every closed slice emits
            a ``detector.slice`` instant (feature values + verdict +
            score) and the verdict/score metrics update.  When the bundle
            carries a :class:`~repro.obs.flightrec.FlightRecorder`, every
            closed slice is also attributed (exact ID3 tree path +
            margins) into its ring — recording only, never behaviour:
            the event stream stays bit-identical to an un-observed run.
    """

    def __init__(
        self,
        tree: Optional[DecisionTree] = None,
        config: Optional[DetectorConfig] = None,
        on_alarm: Optional[Callable[[DetectionEvent], None]] = None,
        keep_history: bool = True,
        max_history: Optional[int] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config or DetectorConfig()
        if tree is None:
            from repro.core.pretrained import default_tree

            tree = default_tree()
        self.tree = tree
        self.on_alarm = on_alarm
        self.keep_history = keep_history
        self.obs = obs if obs is not None else Observability.off()
        self._m_slices = None
        self._m_score = None
        self._m_alarms = None
        if self.obs.enabled:
            metrics = self.obs.metrics
            self._m_slices = metrics.counter(
                "detector_slices_total",
                "Closed time slices, by tree verdict.",
                labelnames=("verdict",),
            )
            self._m_score = metrics.gauge(
                "detector_score",
                "Current sliding-window score (0..window size).",
            )
            self._m_alarms = metrics.counter(
                "detector_alarms_total", "Alarms raised."
            )
        self._fr = self.obs.flightrec
        self._prof = self.obs.profiler
        if self._prof is not None:
            # The disarmed observe() path is the hottest loop in the repo
            # (~390k req/s); rather than tax it with a profiler branch,
            # swap in the profiled wrapper as an instance attribute so the
            # class body stays untouched when no profiler is armed.
            self.observe = self._observe_profiled  # type: ignore[method-assign]
        if self._fr is not None:
            # The recorder classifies near-misses against this detector's
            # own operating point, not its construction-time default.
            self._fr.attribution.threshold = self.config.threshold
        self.table = CountingTable()
        self.window = SlidingWindow(self.config.window_slices)
        self.scores = ScoreTracker(self.config.window_slices)
        self.events: Union[List[DetectionEvent], Deque[DetectionEvent]] = (
            deque(maxlen=max_history) if max_history is not None else []
        )
        self._events_recorded = 0
        self.alarm_event: Optional[DetectionEvent] = None
        self._current = SliceStats(index=0)
        #: Idle slices skipped by the fast-forward path (state-identical
        #: slices that were never individually evaluated).
        self.fast_forwarded_slices = 0

    # -- streaming interface ----------------------------------------------

    @property
    def alarm_raised(self) -> bool:
        """True once the score has reached the threshold."""
        return self.alarm_event is not None

    @property
    def score(self) -> int:
        """Current window score."""
        return self.scores.score

    @property
    def dropped_events(self) -> int:
        """History entries evicted by the ``max_history`` ring so far."""
        return max(0, self._events_recorded - len(self.events))

    def observe(self, request: IORequest) -> None:
        """Ingest one request header (multi-block requests are split).

        Multi-block requests are folded block-by-block without materialising
        per-unit :class:`IORequest` objects — Algorithm 1's ``Length == 1``
        semantics at a fraction of the allocation cost.
        """
        self.tick(request.time)
        current = self._current
        index = current.index
        if request.is_read:
            current.rio += request.length
            record_read = self.table.record_read
            for lba in range(request.lba, request.end_lba):
                record_read(lba, index)
        else:
            current.wio += request.length
            record_write = self.table.record_write
            overwritten = current.overwritten_lbas
            for lba in range(request.lba, request.end_lba):
                if record_write(lba, index):
                    current.owio += 1
                    overwritten.add(lba)

    def _observe_profiled(self, request: IORequest) -> None:
        """:meth:`observe` under a ``detector.observe`` profiler section.

        Installed over ``self.observe`` at construction time when the
        bundle carries a profiler; recording only — the work done is
        exactly one call to the class's :meth:`observe`.
        """
        with self._prof.section("detector.observe"):
            RansomwareDetector.observe(self, request)

    def tick(self, now: float) -> None:
        """Advance simulated time, closing any slices that have expired.

        Call this even without I/O so quiet periods still decay the score.
        Long idle gaps do not cost one loop iteration per empty slice: once
        the detector state has provably converged (empty counting table,
        idle-saturated window, constant verdict ring), the remaining gap is
        fast-forwarded in O(window_slices) — see :meth:`_try_fast_forward`.
        """
        target_slice = int(now // self.config.slice_duration)
        while self._current.index < target_slice:
            if self._try_fast_forward(target_slice):
                break
            self._close_slice()

    def _ingest(self, unit: IORequest) -> None:
        """Fold one unit-length request into the current slice."""
        if unit.is_read:
            self._current.rio += 1
            self.table.record_read(unit.lba, self._current.index)
        else:
            self._current.wio += 1
            if self.table.record_write(unit.lba, self._current.index):
                self._current.owio += 1
                self._current.overwritten_lbas.add(unit.lba)

    def _try_fast_forward(self, target_slice: int) -> bool:
        """Profiler-aware wrapper over :meth:`_fast_forward_impl`."""
        prof = self._prof
        if prof is None:
            return self._fast_forward_impl(target_slice)
        with prof.section("detector.fast_forward"):
            return self._fast_forward_impl(target_slice)

    def _fast_forward_impl(self, target_slice: int) -> bool:
        """Jump a converged idle gap straight to ``target_slice``.

        Engages only when every remaining slice close is provably a
        state-identical no-op: the current slice saw no I/O, the counting
        table is empty (nothing left to expire), the window already holds N
        idle slices, and the verdict ring is saturated with one constant
        verdict — so features, verdict, score, and alarm state cannot
        change.  The window contents and slice cursor are rewritten to
        exactly what slice-by-slice closing would have produced; when
        ``keep_history`` is on, the skipped slices' (identical) events are
        still recorded so the event stream stays bit-for-bit equal to the
        naive path.
        """
        skipped = target_slice - self._current.index
        if skipped <= 1:
            return False
        current = self._current
        if current.rio or current.wio or current.owio:
            return False
        if len(self.table) != 0:
            return False
        if not self.window.is_idle_saturated():
            return False
        verdict = self.scores.saturated_constant()
        if verdict is None:
            return False
        # The ring may have saturated on verdicts computed while stale table
        # entries were still alive; fast-forward is only sound when the
        # idle-state features (all zeros here, by construction) keep
        # producing that same verdict.
        features = compute_features(self.table, self.window)
        if self.tree.predict_one(features.as_tuple()) != verdict:
            return False
        score = self.scores.push_constant(verdict, skipped)
        alarm = score >= self.config.threshold
        if self.keep_history:
            duration = self.config.slice_duration
            self.events.extend(
                DetectionEvent(
                    time=(index + 1) * duration,
                    slice_index=index,
                    features=features,
                    verdict=verdict,
                    score=score,
                    alarm=alarm,
                )
                for index in range(current.index, target_slice)
            )
            self._events_recorded += skipped
        if self._fr is not None:
            self._fr.attribution.record_repeat(
                self.tree, features.as_dict(), features.as_tuple(),
                verdict, score, alarm,
                first_index=current.index, count=skipped,
                slice_duration=self.config.slice_duration,
            )
        self.window.fill_idle(last_index=target_slice - 1)
        self.fast_forwarded_slices += skipped
        if self.obs.enabled:
            self._m_slices.inc(skipped, verdict=verdict)
            self._m_score.set(score)
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.instant(
                    "detector.fast_forward", category="detector",
                    sim_time=target_slice * self.config.slice_duration,
                    slices=skipped, verdict=verdict, score=score,
                )
        self._current = SliceStats(index=target_slice)
        return True

    def _close_slice(self) -> None:
        prof = self._prof
        if prof is None:
            self._close_slice_impl()
            return
        with prof.section("detector.slice_close"):
            self._close_slice_impl()

    def _close_slice_impl(self) -> None:
        closed = self._current
        self.window.push(closed)
        features = compute_features(self.table, self.window)
        verdict = self.tree.predict_one(features.as_tuple())
        score = self.scores.push(verdict)
        alarm = score >= self.config.threshold
        event = DetectionEvent(
            time=(closed.index + 1) * self.config.slice_duration,
            slice_index=closed.index,
            features=features,
            verdict=verdict,
            score=score,
            alarm=alarm,
        )
        if self.keep_history:
            self.events.append(event)
            self._events_recorded += 1
        if self._fr is not None:
            # Attribute before the alarm hook runs: the incident snapshot
            # cut by the hook must already see the alarming slice's path.
            self._fr.attribution.record(
                self.tree, features.as_dict(), features.as_tuple(),
                event.time, closed.index, verdict, score, alarm,
            )
        if self.obs.enabled:
            self._m_slices.inc(verdict=verdict)
            self._m_score.set(score)
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.instant(
                    "detector.slice", category="detector",
                    sim_time=event.time, slice_index=closed.index,
                    verdict=verdict, score=score, **features.as_dict(),
                )
        if alarm and self.alarm_event is None:
            self.alarm_event = event
            if self.obs.enabled:
                self._m_alarms.inc()
                self.obs.tracer.instant(
                    "detector.alarm", category="detector",
                    sim_time=event.time, slice_index=closed.index,
                    score=score, threshold=self.config.threshold,
                )
            if self.on_alarm is not None:
                self.on_alarm(event)
        # After the push the window spans slices [next - N, closed.index];
        # entries last touched before that span expire (Alg. 1 line 6).
        next_index = closed.index + 1
        self.table.expire(next_index - self.config.window_slices)
        self._current = SliceStats(index=next_index)

    # -- control ----------------------------------------------------------

    def reset(self) -> None:
        """Forget all state (called after a recovery completes)."""
        self.table.clear()
        self.window = SlidingWindow(self.config.window_slices)
        self.scores.reset()
        self.alarm_event = None
        # Keep the slice cursor where it is: time does not rewind.

    def memory_bytes(self) -> int:
        """Detector DRAM footprint under Table III unit sizes."""
        return self.table.memory_bytes()
