"""Behavioural profiles for the paper's ransomware samples.

The paper evaluates eight real-world samples — Locky.bdf, Locky.bbs,
Zerber.ufb, WannaCry, Jaff, Mole, GlobeImposter, CryptoShield — plus two
in-house ones built from open-source PoCs (one in-place, one out-of-place).
We cannot run the binaries, so each profile captures the *relative*
header-level behaviour the paper's figures document:

* WannaCry and Mole overwrite fast and steadily (the steep cumulative
  curves of Fig. 1b);
* Jaff and CryptoShield are slow/bursty — "too slow to be detected by
  OWIO and OWST" until PWIO accumulates over the window (Fig. 2c/d);
* the Locky and Zerber families sit in between.

Throughput numbers are simulation-scale (blocks per second of the
encrypt-overwrite pipeline), chosen to preserve those orderings; detection
thresholds are learned from the same simulated distributions, so the
pipeline is self-consistent end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import WorkloadError
from repro.workloads.base import LbaRegion
from repro.workloads.ransomware.base import OverwriteClass, Ransomware


@dataclass(frozen=True)
class RansomwareProfile:
    """Per-sample behaviour parameters."""

    name: str
    blocks_per_second: float
    overwrite_class: OverwriteClass
    chunk_blocks: int = 8
    pause_probability: float = 0.0
    pause_seconds: float = 1.0
    mean_file_blocks: int = 16
    speed_jitter_sigma: float = 0.8

    def build(
        self,
        region: LbaRegion,
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> Ransomware:
        """Instantiate the sample over a region."""
        return Ransomware(
            name=self.name,
            region=region,
            blocks_per_second=self.blocks_per_second,
            overwrite_class=self.overwrite_class,
            chunk_blocks=self.chunk_blocks,
            pause_probability=self.pause_probability,
            pause_seconds=self.pause_seconds,
            mean_file_blocks=self.mean_file_blocks,
            speed_jitter_sigma=self.speed_jitter_sigma,
            start=start,
            duration=duration,
            seed=seed,
            time_scale=time_scale,
        )


RANSOMWARE_PROFILES: Dict[str, RansomwareProfile] = {
    "wannacry": RansomwareProfile(
        name="wannacry",
        blocks_per_second=2400.0,
        overwrite_class=OverwriteClass.OUT_OF_PLACE,
        chunk_blocks=8,
    ),
    "mole": RansomwareProfile(
        name="mole",
        blocks_per_second=2000.0,
        overwrite_class=OverwriteClass.IN_PLACE,
        chunk_blocks=8,
    ),
    "globeimposter": RansomwareProfile(
        name="globeimposter",
        blocks_per_second=1700.0,
        overwrite_class=OverwriteClass.IN_PLACE,
        chunk_blocks=8,
    ),
    "locky.bdf": RansomwareProfile(
        name="locky.bdf",
        blocks_per_second=1300.0,
        overwrite_class=OverwriteClass.IN_PLACE,
        chunk_blocks=4,
    ),
    "locky.bbs": RansomwareProfile(
        name="locky.bbs",
        blocks_per_second=1200.0,
        overwrite_class=OverwriteClass.IN_PLACE,
        chunk_blocks=4,
    ),
    "zerber.ufb": RansomwareProfile(
        name="zerber.ufb",
        blocks_per_second=1100.0,
        overwrite_class=OverwriteClass.OUT_OF_PLACE,
        chunk_blocks=4,
    ),
    "jaff": RansomwareProfile(
        name="jaff",
        blocks_per_second=700.0,
        overwrite_class=OverwriteClass.OUT_OF_PLACE,
        chunk_blocks=4,
        pause_probability=0.15,
        pause_seconds=1.0,
        speed_jitter_sigma=0.4,
    ),
    "cryptoshield": RansomwareProfile(
        name="cryptoshield",
        blocks_per_second=350.0,
        overwrite_class=OverwriteClass.IN_PLACE,
        chunk_blocks=4,
        pause_probability=0.25,
        pause_seconds=0.8,
        speed_jitter_sigma=0.5,
    ),
    # The paper's two in-house samples, built from open-source PoCs
    # (github roothaxor/Ransom, mauri870/ransomware).
    "inhouse-inplace": RansomwareProfile(
        name="inhouse-inplace",
        blocks_per_second=900.0,
        overwrite_class=OverwriteClass.IN_PLACE,
        chunk_blocks=8,
    ),
    "inhouse-outplace": RansomwareProfile(
        name="inhouse-outplace",
        blocks_per_second=900.0,
        overwrite_class=OverwriteClass.OUT_OF_PLACE,
        chunk_blocks=8,
    ),
}


def make_ransomware(
    name: str,
    region: LbaRegion,
    start: float = 0.0,
    duration: float = 60.0,
    seed: int = 0,
    time_scale: float = 1.0,
) -> Ransomware:
    """Instantiate a named sample (case-insensitive)."""
    profile = RANSOMWARE_PROFILES.get(name.lower())
    if profile is None:
        known = ", ".join(sorted(RANSOMWARE_PROFILES))
        raise WorkloadError(f"unknown ransomware {name!r}; known samples: {known}")
    return profile.build(
        region, start=start, duration=duration, seed=seed, time_scale=time_scale
    )
