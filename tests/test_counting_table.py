"""Counting table: run-length tracking, overwrite detection, expiry."""

import pytest

from repro.core.counting_table import MAX_RUN_BLOCKS, CountingTable, TableEntry


@pytest.fixture
def table() -> CountingTable:
    return CountingTable()


class TestReads:
    def test_new_entry(self, table):
        entry = table.record_read(10, slice_index=0)
        assert entry.lba == 10 and entry.rl == 1 and entry.wl == 0
        assert len(table) == 1

    def test_reread_refreshes_time(self, table):
        table.record_read(10, 0)
        entry = table.record_read(10, 3)
        assert entry.slice_index == 3
        assert len(table) == 1

    def test_extend_right(self, table):
        table.record_read(10, 0)
        entry = table.record_read(11, 0)
        assert entry.lba == 10 and entry.rl == 2
        assert len(table) == 1

    def test_extend_left(self, table):
        table.record_read(10, 0)
        entry = table.record_read(9, 0)
        assert entry.lba == 9 and entry.rl == 2

    def test_merge_adjacent_runs(self, table):
        table.record_read(10, 0)
        table.record_read(12, 0)
        # Reading 11 bridges the two runs into one (MergeEntry).
        entry = table.record_read(11, 0)
        assert entry.lba == 10 and entry.rl == 3
        assert len(table) == 1

    def test_merge_after_left_extension(self, table):
        """Scanning left-to-right: extending [10] to [10,11] must merge with
        the run starting at 12."""
        table.record_read(10, 0)
        table.record_read(12, 0)
        entry = table.record_read(11, 0)
        assert entry.lba == 10 and entry.rl == 3
        assert len(table) == 1

    def test_merge_after_right_extension(self, table):
        """The right-extension path (`right is not None`) historically never
        merged with a further-left run; merging is now symmetric.  The
        asymmetry was latent under today's extension conditions (a run
        ending at ``lba`` always covers ``lba - 1``, so the left branch
        wins first), but the symmetry must hold regardless of which branch
        bridges the gap — fragmented runs skew AVGWIO's denominator."""
        table.record_read(12, 0)   # seed the right run first...
        table.record_read(10, 0)   # ...then a run to its left
        entry = table.record_read(11, 0)  # bridges the two runs
        assert entry.lba == 10 and entry.rl == 3
        assert len(table) == 1
        assert table.entry_for(10) is table.entry_for(12)

    def test_no_unhealed_fragments_either_direction(self, table):
        """The observable meaning of symmetric merging: whichever direction
        runs are scanned or bridged from, the table never retains two
        abutting overwrite-free runs that a single merge could coalesce."""
        import random

        rng = random.Random(7)
        lbas = list(range(0, 48))
        for trial in range(20):
            table.clear()
            rng.shuffle(lbas)
            for lba in lbas:
                table.record_read(lba, 0)
            entries = {e.lba: e for e in table}
            for e in entries.values():
                neighbour = entries.get(e.end_lba)
                assert not (
                    neighbour is not None
                    and e.wl == 0
                    and neighbour.wl == 0
                    and e.rl + neighbour.rl <= MAX_RUN_BLOCKS
                ), f"unmerged fragments at {e.lba}+{e.rl} (trial {trial})"

    def test_right_to_left_scan_coalesces(self, table):
        """A strictly descending scan coalesces into one run, exactly like
        the ascending scan does."""
        for lba in range(19, 9, -1):
            table.record_read(lba, 0)
        ascending = CountingTable()
        for lba in range(10, 20):
            ascending.record_read(lba, 0)
        assert len(table) == len(ascending) == 1
        assert table.entry_for(10).rl == 10

    def test_merge_symmetry_respects_run_cap(self, table):
        """Right-extension merging honours MAX_RUN_BLOCKS like the left
        path does."""
        for lba in range(MAX_RUN_BLOCKS):
            table.record_read(lba, 0)
        table.record_read(MAX_RUN_BLOCKS + 1, 0)
        table.record_read(MAX_RUN_BLOCKS, 0)  # extends the singleton leftward
        assert all(e.rl <= MAX_RUN_BLOCKS for e in table)
        assert len(table) == 2

    def test_disjoint_runs_stay_separate(self, table):
        table.record_read(10, 0)
        table.record_read(20, 0)
        assert len(table) == 2

    def test_run_length_capped(self, table):
        for lba in range(MAX_RUN_BLOCKS + 10):
            table.record_read(lba, 0)
        assert all(e.rl <= MAX_RUN_BLOCKS for e in table)
        assert len(table) >= 2

    def test_hash_entries_track_coverage(self, table):
        for lba in range(5):
            table.record_read(lba, 0)
        assert table.hash_entries == 5


class TestWrites:
    def test_write_untracked_is_not_overwrite(self, table):
        assert table.record_write(10, 0) is False
        assert len(table) == 0

    def test_write_after_read_is_overwrite(self, table):
        table.record_read(10, 0)
        assert table.record_write(10, 0) is True
        assert table.entry_for(10).wl == 1

    def test_repeat_overwrites_keep_counting(self, table):
        """DoD-style wipes overwrite the same block repeatedly; WL (and so
        OWIO) counts every pass — only OWST de-duplicates."""
        table.record_read(10, 0)
        for _ in range(7):
            table.record_write(10, 0)
        assert table.entry_for(10).wl == 7

    def test_split_on_mid_run_overwrite(self, table):
        for lba in range(10, 16):
            table.record_read(lba, 0)
        table.record_write(13, 0)
        left = table.entry_for(10)
        right = table.entry_for(13)
        assert left is not right
        assert left.rl == 3 and left.wl == 0
        assert right.lba == 13 and right.wl == 1

    def test_sequential_overwrite_accumulates_in_one_entry(self, table):
        for lba in range(10, 18):
            table.record_read(lba, 0)
        for lba in range(10, 18):
            table.record_write(lba, 0)
        entry = table.entry_for(10)
        assert entry.wl == 8

    def test_mean_wl(self, table):
        table.record_read(0, 0)
        table.record_read(10, 0)
        table.record_write(0, 0)
        table.record_write(0, 0)
        assert table.mean_wl() == pytest.approx(1.0)  # (2 + 0) / 2

    def test_mean_wl_empty(self, table):
        assert table.mean_wl() == 0.0


class TestExpiry:
    def test_expire_drops_stale_entries(self, table):
        table.record_read(10, 0)
        table.record_read(20, 5)
        assert table.expire(oldest_live_slice=3) == 1
        assert table.entry_for(10) is None
        assert table.entry_for(20) is not None

    def test_expired_lba_no_longer_overwritable(self, table):
        table.record_read(10, 0)
        table.expire(oldest_live_slice=5)
        assert table.record_write(10, 6) is False

    def test_refresh_prevents_expiry(self, table):
        table.record_read(10, 0)
        table.record_read(10, 5)
        assert table.expire(oldest_live_slice=3) == 0

    def test_expire_unindexes_whole_run(self, table):
        for lba in range(10, 14):
            table.record_read(lba, 0)
        table.expire(oldest_live_slice=1)
        assert table.hash_entries == 0

    def test_clear(self, table):
        table.record_read(10, 0)
        table.clear()
        assert len(table) == 0 and table.hash_entries == 0


class TestMemory:
    def test_memory_accounting(self, table):
        for lba in range(3):
            table.record_read(lba, 0)
        # One entry (merged run of 3) + three hash slots.
        assert table.memory_bytes() == 3 * 42 + 1 * 12
