"""Table II — file-system consistency after attack + rollback + fsck.

The paper ran 100 cycles against EXT4; this benchmark runs a reduced count
by default (each cycle builds a filesystem, attacks it, recovers, fscks,
and audits every file).  Raise ``CYCLES`` for the full-fidelity run.
"""

from repro.experiments import table2

CYCLES = 6


def test_table2_consistency_cycles(benchmark, publish, pretrained_tree):
    result = benchmark.pedantic(
        lambda: table2.run(cycles=CYCLES, seed=3, tree=pretrained_tree,
                           num_files=250),
        rounds=1, iterations=1,
    )
    publish("table2_consistency", result.render())
    # The paper's outcome: every cycle detected, every corruption resolved,
    # no encrypted file left, nothing lost.
    assert result.alarms == CYCLES
    assert result.unresolved == 0
    assert result.files_encrypted_left == 0
    assert result.files_lost == 0


def test_table2_journaling_ablation(benchmark, publish, pretrained_tree):
    """With transactional metadata journaling the crash-like rollback
    state repairs by replay: the corruption classes vanish entirely."""
    result = benchmark.pedantic(
        lambda: table2.run(cycles=4, seed=3, tree=pretrained_tree,
                           num_files=250, journal_blocks=64),
        rounds=1, iterations=1,
    )
    publish("table2_journaled", result.render())
    assert result.alarms == 4
    assert sum(result.corruption_counts.values()) == 0
    assert result.files_encrypted_left == 0
    assert result.files_lost == 0
