"""Extension study — throttled-attacker evasion sweep."""

from repro.experiments import evasion


def test_evasion_sweep(benchmark, publish, pretrained_tree):
    result = benchmark.pedantic(
        lambda: evasion.run(rates=(5, 25, 100, 400, 1600), seed=2,
                            duration=60.0, repetitions=2,
                            tree=pretrained_tree),
        rounds=1, iterations=1,
    )
    publish("evasion_sweep", result.render())
    by_rate = {row.blocks_per_second: row for row in result.rows}
    # Fast attacks are always caught, quickly.
    assert by_rate[1600].detection_rate == 1.0
    assert by_rate[1600].mean_latency <= 10.0
    assert by_rate[400].detection_rate == 1.0
    # A sufficiently slow attacker can slip under the rate features —
    # the known limitation — but its damage rate collapses with it.
    slowest = by_rate[5]
    fastest = by_rate[1600]
    assert slowest.damage_blocks_per_minute < \
        fastest.damage_blocks_per_minute / 20.0
