"""fsck: detection and repair of every Table II corruption class."""

import pytest

from repro.fs.fsck import CorruptionType, fsck
from repro.fs.layout import FsLayout, decode_block, encode_block
from repro.fs.simplefs import SimpleFS
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD
from repro.units import BLOCK_SIZE


@pytest.fixture
def device() -> SimulatedSSD:
    return SimulatedSSD(SSDConfig.tiny(detector_enabled=False))


@pytest.fixture
def fs(device) -> SimpleFS:
    filesystem = SimpleFS(device, num_inodes=16)
    filesystem.format()
    filesystem.create("a", b"aaaa" * 100)
    filesystem.create("b", b"bbbb" * 2000)
    return filesystem


def corrupt_superblock(device, **fields):
    record = decode_block(device.read(0))
    record.update(fields)
    device.write(0, encode_block(record))


class TestCleanFilesystem:
    def test_clean_fs_reports_nothing(self, device, fs):
        report = fsck(device)
        assert report.clean
        assert report.files_kept == 2

    def test_fsck_idempotent(self, device, fs):
        fsck(device)
        assert fsck(device).clean


class TestCorruptionRepair:
    def test_wrong_free_block_count(self, device, fs):
        corrupt_superblock(device, free=1)
        report = fsck(device)
        assert report.count(CorruptionType.FREE_BLOCK_COUNT) >= 1
        remounted = SimpleFS(device, num_inodes=16)
        remounted.mount()
        assert remounted.free_blocks > 1
        assert fsck(device).clean

    def test_wrong_inode_count(self, device, fs):
        corrupt_superblock(device, inodes=9)
        report = fsck(device)
        assert report.count(CorruptionType.FREE_BLOCK_COUNT) >= 1
        assert fsck(device).clean

    def test_bitmap_corruption(self, device, fs):
        layout = fs.layout
        bitmap = bytearray(device.read(layout.bitmap_start))
        # Mark the last (free) data block as allocated: no inode claims it.
        victim_bit = layout.total_blocks - 1
        bitmap[victim_bit // 8] ^= 1 << (victim_bit % 8)
        device.write(layout.bitmap_start, bytes(bitmap))
        report = fsck(device)
        assert report.count(CorruptionType.FREE_SPACE_BITMAP) >= 1
        assert fsck(device).clean

    def test_inode_block_count_mismatch(self, device, fs):
        layout = fs.layout
        inode_block = layout.inode_block_of(0)
        record = decode_block(device.read(inode_block))
        record["i"][0]["c"] = 99  # stored count disagrees with block list
        device.write(inode_block, encode_block(record))
        report = fsck(device)
        assert report.count(CorruptionType.INODE_BLOCK_COUNT) >= 1
        assert fsck(device).clean

    def test_invalid_inode_out_of_range_block(self, device, fs):
        layout = fs.layout
        inode_block = layout.inode_block_of(0)
        record = decode_block(device.read(inode_block))
        record["i"][0]["b"] = [layout.total_blocks + 5]
        device.write(inode_block, encode_block(record))
        report = fsck(device)
        assert report.count(CorruptionType.INVALID_INODE) >= 1
        assert fsck(device).clean

    def test_doubly_referenced_block(self, device, fs):
        layout = fs.layout
        first = decode_block(device.read(layout.inode_block_of(0)))
        block_of_a = first["i"][0]["b"][0]
        # Make inode 1 ("b") also claim inode 0's first block.
        first["i"][1]["b"] = [block_of_a] + first["i"][1]["b"][1:]
        device.write(layout.inode_block_of(0), encode_block(first))
        report = fsck(device)
        assert report.count(CorruptionType.INVALID_INODE) >= 1
        assert fsck(device).clean

    def test_file_contents_survive_repair(self, device, fs):
        corrupt_superblock(device, free=1, inodes=0)
        fsck(device)
        remounted = SimpleFS(device, num_inodes=16)
        remounted.mount()
        assert remounted.read_file("a") == b"aaaa" * 100
        assert remounted.read_file("b") == b"bbbb" * 2000

    def test_fs_usable_after_repair(self, device, fs):
        corrupt_superblock(device, free=0)
        fsck(device)
        remounted = SimpleFS(device, num_inodes=16)
        remounted.mount()
        remounted.create("c", b"new file after fsck")
        assert remounted.read_file("c") == b"new file after fsck"


class TestEncryptionAudit:
    def test_looks_encrypted_separates_cipher_from_plain(self):
        from repro.fs.ransomfs import encrypt, looks_encrypted

        plaintext = b"The quick brown fox. " * 500
        assert not looks_encrypted(plaintext)
        assert looks_encrypted(encrypt(plaintext, key=b"k" * 32))

    def test_entropy_bounds(self):
        from repro.fs.ransomfs import shannon_entropy

        assert shannon_entropy(b"") == 0.0
        assert shannon_entropy(b"aaaa") == 0.0
        assert shannon_entropy(bytes(range(256))) == pytest.approx(8.0)

    def test_encrypt_roundtrip(self):
        from repro.fs.ransomfs import encrypt

        data = b"secret" * 100
        key = b"0" * 32
        assert encrypt(encrypt(data, key), key) == data
