#!/usr/bin/env python
"""Analyse an external block trace (the real-world integration path).

Any tool that can emit ``time,lba,mode,length`` rows — a blktrace
post-processor, an eBPF probe, a vendor utility — can feed this library.
The example produces a CSV trace (standing in for a real capture),
imports it, profiles it, runs the detector over it, and prints the
score timeline around the verdict.

Run:  python examples/external_trace_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.report import render_table
from repro.blockdev.csvtrace import load_csv_trace, save_csv_trace
from repro.core.detector import RansomwareDetector
from repro.core.pretrained import default_tree
from repro.ssd.timing import profile_trace
from repro.workloads.scenario import Scenario


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "capture.csv"

        # Stand-in for a real capture: an office machine whose user is
        # browsing while ransomware detonates mid-trace.
        run = Scenario("capture", ransomware="globeimposter",
                       app="websurfing", onset=12.0).build(
            seed=2026, duration=40.0
        )
        save_csv_trace(run.trace, csv_path)
        print(f"captured trace: {csv_path.stat().st_size // 1024} KiB CSV, "
              f"{len(run.trace)} requests")

        # Import and profile it, exactly as an analyst would a real file.
        trace = load_csv_trace(csv_path, source_column="source")
        profile = profile_trace(trace)
        stats = trace.stats()
        print(render_table(
            ("metric", "value"),
            [
                ("requests", stats.num_requests),
                ("unique LBAs", stats.unique_lbas),
                ("read-hit rate", f"{profile.read_hit_rate:.1%}"),
                ("overwrite rate", f"{profile.overwrite_rate:.1%}"),
            ],
        ))

        # Run the detector offline over the capture.
        detector = RansomwareDetector(tree=default_tree())
        for request in trace:
            detector.observe(request)
        detector.tick(trace.end_time + 1.0)
        print("\nscore timeline around the verdict:")
        alarm_index = (detector.alarm_event.slice_index
                       if detector.alarm_event else None)
        for event in detector.events:
            if alarm_index is not None and abs(event.slice_index - alarm_index) <= 5:
                marker = " <- ALARM" if event.slice_index == alarm_index else ""
                print(f"  slice {event.slice_index:3d}  "
                      f"verdict {event.verdict}  score {event.score}{marker}")
        if detector.alarm_raised:
            latency = detector.alarm_event.slice_index + 1 - run.onset
            print(f"\nverdict: RANSOMWARE, detected {latency:.0f}s "
                  f"after the (ground-truth) onset at {run.onset:.0f}s")
        else:
            print("\nverdict: clean")


if __name__ == "__main__":
    main()
