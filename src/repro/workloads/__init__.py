"""Workload generators: ransomware behaviour models and background apps.

Every generator produces a bounded, time-ordered stream of block-I/O request
headers over its own LBA region — the only thing the in-SSD detector ever
sees.  :mod:`repro.workloads.scenario` composes one ransomware with one
background application (with CPU/IO-contention slowdown), and
:mod:`repro.workloads.catalog` reproduces the paper's Table I train/test
matrix.
"""

from repro.workloads.base import LbaRegion, Workload
from repro.workloads.catalog import (
    TESTING_SCENARIOS,
    TRAINING_SCENARIOS,
    testing_scenarios,
    training_scenarios,
)
from repro.workloads.filespace import FileExtent, FileSpace
from repro.workloads.ransomware.base import OverwriteClass, Ransomware
from repro.workloads.ransomware.profiles import RANSOMWARE_PROFILES, make_ransomware
from repro.workloads.scenario import Scenario, ScenarioRun

__all__ = [
    "FileExtent",
    "FileSpace",
    "LbaRegion",
    "OverwriteClass",
    "RANSOMWARE_PROFILES",
    "Ransomware",
    "Scenario",
    "ScenarioRun",
    "TESTING_SCENARIOS",
    "TRAINING_SCENARIOS",
    "Workload",
    "make_ransomware",
    "testing_scenarios",
    "training_scenarios",
]
