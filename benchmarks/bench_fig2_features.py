"""Fig. 2 — the six features' correlation and cumulative panels."""

from repro.experiments import fig2


def test_fig2_feature_panels(benchmark, publish):
    result = benchmark.pedantic(
        lambda: fig2.run(seed=1, duration=45.0), rounds=1, iterations=1
    )
    publish("fig2_features", result.render())
    # Every feature correlates positively with activity for fast samples.
    for feature in ("owio", "owst", "pwio", "avgwio"):
        assert result.correlations[feature]["wannacry"] > 0.3, feature
    # The cumulative OWST separation: every sample above every benign app.
    assert result.ransomware_lead("owst") > 1.0
