"""Correlation/cumulative analysis and table rendering."""

import pytest

from repro.analysis.correlation import (
    active_seconds_per_slice,
    feature_activity_correlation,
)
from repro.analysis.cumulative import (
    cumulative_comparison,
    cumulative_feature_series,
)
from repro.analysis.report import render_table
from repro.errors import ConfigError
from repro.workloads.scenario import Scenario


@pytest.fixture(scope="module")
def ransom_run():
    return Scenario("corr", ransomware="wannacry", onset=5.0).build(
        seed=1, duration=30.0
    )


class TestActiveSeconds:
    def test_quiet_slices_zero(self, ransom_run):
        active = active_seconds_per_slice(ransom_run)
        assert active[0] == 0.0

    def test_active_slices_positive(self, ransom_run):
        active = active_seconds_per_slice(ransom_run)
        busy = [a for a in active if a > 0]
        assert busy
        assert all(0 < a <= 1.0 for a in busy)

    def test_benign_run_rejected(self):
        run = Scenario("b", app="websurfing").build(seed=1, duration=10.0)
        with pytest.raises(ConfigError):
            active_seconds_per_slice(run)


class TestCorrelation:
    def test_owio_strongly_correlated(self, ransom_run):
        result = feature_activity_correlation(ransom_run, "owio")
        assert result.pearson > 0.8

    def test_points_one_per_slice(self, ransom_run):
        result = feature_activity_correlation(ransom_run, "owio")
        assert len(result.points) == 30

    def test_binned_trend_increases(self, ransom_run):
        result = feature_activity_correlation(ransom_run, "owio")
        bins = result.binned(4)
        assert bins[-1][1] > bins[0][1]

    def test_unknown_feature_rejected(self, ransom_run):
        with pytest.raises(ConfigError):
            feature_activity_correlation(ransom_run, "entropy")


class TestCumulative:
    def test_series_nondecreasing(self, ransom_run):
        series = cumulative_feature_series(ransom_run, "owio")
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_comparison_keys(self, ransom_run):
        comparison = cumulative_comparison([ransom_run], "owio")
        assert set(comparison) == {"corr"}

    def test_unknown_feature_rejected(self, ransom_run):
        with pytest.raises(ConfigError):
            cumulative_feature_series(ransom_run, "bogus")


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(("name", "value"), [("a", 1), ("long-name", 2.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_number_formatting(self):
        text = render_table(("v",), [(1234567.0,), (0.1234,), (0.0,)])
        assert "1,234,567" in text
        assert "0.1234" in text

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert len(text.splitlines()) == 2
