"""The metrics registry: counters, gauges, and two kinds of histograms.

The simulated firmware's runtime state has so far been visible only through
the ad-hoc :class:`~repro.ftl.stats.FtlStats` bundle and a one-shot SMART
snapshot.  This module is the general substrate: named metric families with
labeled series, Prometheus-style semantics (counters only go up, gauges go
anywhere, histograms bucket observations), and three renderers — a text
exposition for terminals, a strict Prometheus exposition
(:meth:`MetricsRegistry.render_prometheus`), and a JSON document for
machines.

Two histogram kinds coexist:

* :class:`Histogram` — fixed explicit buckets (classic Prometheus ``le``
  semantics), for series whose interesting range is known up front;
* :class:`LogHistogramFamily` — log-bucketed HDR-style
  :class:`~repro.obs.hist.LogHistogram` series, the default for
  latency/occupancy distributions: unbounded dynamic range at ~3% relative
  resolution, and **mergeable** across independent runs.

Registries themselves merge (:meth:`MetricsRegistry.merge`) and round-trip
through a compact JSON form (:meth:`MetricsRegistry.to_compact` /
:meth:`MetricsRegistry.from_compact`) so a fleet of N runs aggregates into
one registry whose histogram series are bucket-exact equal to a single
pooled run.  A registry can also record periodic sim-time/wall-time
**snapshots** of its scalar series (:meth:`MetricsRegistry.record_snapshot`)
— a bounded in-memory time series for post-run trend plots.

Naming conventions (see ``docs/observability.md``):

* families are ``snake_case``; counters end in ``_total``;
* units are spelled out in the name (``_seconds``, ``_bytes``, ``_pages``);
* label names are short and low-cardinality (``mode``, ``kind``,
  ``verdict``) — the registry enforces a hard per-family series cap so an
  accidental high-cardinality label (an LBA, a timestamp) fails fast
  instead of silently eating memory.
"""

from __future__ import annotations

import json
import math
from collections import deque
from time import perf_counter
from typing import (
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ObservabilityError
from repro.obs.hist import DEFAULT_MIN_VALUE, DEFAULT_SUBBUCKETS, LogHistogram

#: Hard per-family bound on distinct label-value combinations.
DEFAULT_MAX_SERIES = 1024

#: Default bound on retained time-series snapshots (drop-oldest past it).
DEFAULT_MAX_SNAPSHOTS = 4096

#: Schema stamped into the registry's compact form.
COMPACT_REGISTRY_SCHEMA = "ssd-insider.metrics/v1"

#: Default latency buckets (seconds): 1 µs .. ~1 s in x4 steps.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1.0,
)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ObservabilityError(
            f"metric name must be non-empty snake_case, got {name!r}"
        )
    return name


class MetricFamily:
    """Base class for one named metric and all its labeled series.

    Args:
        name: Family name (``snake_case``; counters end in ``_total``).
        help: One-line human description, shown by the text renderer.
        labelnames: Ordered label names every series must provide.
        max_series: Cardinality cap; exceeding it raises
            :class:`~repro.errors.ObservabilityError`.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        for label in self.labelnames:
            _validate_name(label)
        self.max_series = max_series
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        if key not in self._series and len(self._series) >= self.max_series:
            raise ObservabilityError(
                f"metric {self.name!r} exceeded its cardinality cap of "
                f"{self.max_series} series — a high-cardinality label "
                f"(LBA? timestamp?) leaked into the label set"
            )
        return key

    def __len__(self) -> int:
        return len(self._series)

    def labels_of(self, key: Tuple[str, ...]) -> Dict[str, str]:
        """Reconstruct the label dict for one series key."""
        return dict(zip(self.labelnames, key))

    def series_items(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """Iterate ``(label-values, series-state)`` pairs."""
        return iter(sorted(self._series.items()))

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready description of the family and all its series."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": self.labels_of(key), **self._series_dict(state)}
                for key, state in self.series_items()
            ],
        }

    def _series_dict(self, state: object) -> Dict[str, object]:
        return {"value": state}

    def render_text(self) -> str:
        """Prometheus-exposition-style text for this family."""
        lines: List[str] = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, state in self.series_items():
            lines.extend(self._render_series(key, state))
        return "\n".join(lines)

    def _render_series(
        self, key: Tuple[str, ...], state: object
    ) -> List[str]:
        return [f"{self.name}{_label_text(self.labels_of(key))} {_num(state)}"]

    # -- merge & compact form (fleet aggregation substrate) ----------------

    def _params(self) -> Dict[str, object]:
        """Constructor kwargs that recreate an equivalent empty family."""
        return {
            "help": self.help,
            "labelnames": self.labelnames,
            "max_series": self.max_series,
        }

    def _merge_state(self, mine: object, theirs: object) -> object:
        """Combine one series' state with an incoming run's state."""
        raise ObservabilityError(
            f"metric kind {self.kind!r} does not support merging"
        )

    def merge_from(self, other: "MetricFamily") -> None:
        """Fold every series of ``other`` (same family) into this one."""
        if other.kind != self.kind or other.labelnames != self.labelnames:
            raise ObservabilityError(
                f"cannot merge family {other.name!r} ({other.kind}, labels "
                f"{other.labelnames}) into {self.name!r} ({self.kind}, "
                f"labels {self.labelnames})"
            )
        for key, state in other.series_items():
            mine = self._series.get(key)
            if mine is None:
                self._key(other.labels_of(key))  # enforce the series cap
                self._series[key] = self._copy_state(state)
            else:
                self._series[key] = self._merge_state(mine, state)

    def _copy_state(self, state: object) -> object:
        """Independent copy of one series' state (used when adopting)."""
        return state

    def _state_to_compact(self, state: object) -> object:
        """One series' state as a JSON-ready value."""
        return state

    def _state_from_compact(self, payload: object) -> object:
        """Rebuild one series' state from its compact value."""
        return payload

    def to_compact(self) -> Dict[str, object]:
        """JSON-ready lossless form of the family (for fleet shipping)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "max_series": self.max_series,
            "series": [
                {"key": list(key), "state": self._state_to_compact(state)}
                for key, state in self.series_items()
            ],
        }

    def load_compact_series(self, payload: Mapping[str, object]) -> None:
        """Restore the series recorded by :meth:`to_compact`."""
        for row in payload.get("series", ()):  # type: ignore[union-attr]
            key = tuple(str(part) for part in row["key"])
            self._series[key] = self._state_from_compact(row["state"])


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + inner + "}"


def _num(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == math.inf:
        return "+Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class Counter(MetricFamily):
    """A monotonically increasing count (events, pages, requests)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount  # type: ignore[operator]

    def value(self, **labels: object) -> float:
        """Current value of the labeled series (0 if never incremented)."""
        return float(self._series.get(self._key(labels), 0.0))  # type: ignore[arg-type]

    def _merge_state(self, mine: object, theirs: object) -> object:
        # Counts from independent runs add.
        return float(mine) + float(theirs)  # type: ignore[arg-type]


class Gauge(MetricFamily):
    """A value that can go up and down (queue depth, score, ratio)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Set the labeled series to ``value``."""
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount  # type: ignore[operator]

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Subtract ``amount`` from the labeled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """Current value of the labeled series (0 if never set)."""
        return float(self._series.get(self._key(labels), 0.0))  # type: ignore[arg-type]

    def _merge_state(self, mine: object, theirs: object) -> object:
        # A gauge is a point-in-time value; the incoming run's last
        # observation wins (summing queue depths across runs would invent
        # a device that never existed).
        return float(theirs)  # type: ignore[arg-type]


class _HistogramSeries:
    """Bucket counts + sum + count for one label combination."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0


class Histogram(MetricFamily):
    """Fixed-bucket distribution of observed values.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics); an
    implicit ``+Inf`` bucket always exists, so ``observe`` never loses a
    sample.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, help, labelnames, max_series)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be a non-empty strictly "
                f"increasing sequence, got {bounds}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labeled series."""
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = _HistogramSeries(len(self.buckets))
            self._series[key] = state
        assert isinstance(state, _HistogramSeries)
        index = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        state.bucket_counts[index] += 1
        state.sum += value
        state.count += 1

    def count(self, **labels: object) -> int:
        """Observations recorded in the labeled series."""
        state = self._series.get(self._key(labels))
        return state.count if isinstance(state, _HistogramSeries) else 0

    def sum(self, **labels: object) -> float:
        """Sum of observed values in the labeled series."""
        state = self._series.get(self._key(labels))
        return state.sum if isinstance(state, _HistogramSeries) else 0.0

    def _series_dict(self, state: object) -> Dict[str, object]:
        assert isinstance(state, _HistogramSeries)
        cumulative = 0
        buckets = []
        for bound, count in zip(
            list(self.buckets) + [math.inf], state.bucket_counts
        ):
            cumulative += count
            buckets.append({"le": _num(bound), "count": cumulative})
        return {"count": state.count, "sum": state.sum, "buckets": buckets}

    def _render_series(
        self, key: Tuple[str, ...], state: object
    ) -> List[str]:
        assert isinstance(state, _HistogramSeries)
        labels = self.labels_of(key)
        lines: List[str] = []
        cumulative = 0
        for bound, count in zip(
            list(self.buckets) + [math.inf], state.bucket_counts
        ):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _num(bound)
            lines.append(
                f"{self.name}_bucket{_label_text(bucket_labels)} {cumulative}"
            )
        lines.append(f"{self.name}_sum{_label_text(labels)} {_num(state.sum)}")
        lines.append(f"{self.name}_count{_label_text(labels)} {state.count}")
        return lines

    def _params(self) -> Dict[str, object]:
        params = super()._params()
        params["buckets"] = self.buckets
        return params

    def _merge_state(self, mine: object, theirs: object) -> object:
        assert isinstance(mine, _HistogramSeries)
        assert isinstance(theirs, _HistogramSeries)
        for index, count in enumerate(theirs.bucket_counts):
            mine.bucket_counts[index] += count
        mine.sum += theirs.sum
        mine.count += theirs.count
        return mine

    def _copy_state(self, state: object) -> object:
        assert isinstance(state, _HistogramSeries)
        copy = _HistogramSeries(len(self.buckets))
        return self._merge_state(copy, state)

    def merge_from(self, other: "MetricFamily") -> None:
        """Fold another fixed-bucket family in (bounds must match)."""
        if isinstance(other, Histogram) and other.buckets != self.buckets:
            raise ObservabilityError(
                f"cannot merge histogram {other.name!r}: bucket bounds "
                f"differ ({other.buckets} vs {self.buckets})"
            )
        super().merge_from(other)

    def _state_to_compact(self, state: object) -> object:
        assert isinstance(state, _HistogramSeries)
        return {
            "bucket_counts": list(state.bucket_counts),
            "sum": state.sum,
            "count": state.count,
        }

    def _state_from_compact(self, payload: object) -> object:
        assert isinstance(payload, Mapping)
        state = _HistogramSeries(len(self.buckets))
        counts = list(payload["bucket_counts"])  # type: ignore[index]
        if len(counts) != len(state.bucket_counts):
            raise ObservabilityError(
                f"histogram {self.name!r} compact form has "
                f"{len(counts)} buckets, expected {len(state.bucket_counts)}"
            )
        state.bucket_counts = [int(c) for c in counts]
        state.sum = float(payload["sum"])  # type: ignore[index]
        state.count = int(payload["count"])  # type: ignore[index]
        return state

    def to_compact(self) -> Dict[str, object]:
        """Compact form including the bucket bounds."""
        payload = super().to_compact()
        payload["buckets"] = list(self.buckets)
        return payload


class LogHistogramFamily(MetricFamily):
    """Labeled series of mergeable :class:`~repro.obs.hist.LogHistogram`.

    The registry's default for latency and occupancy distributions: no
    bucket bounds to choose up front, ~``1/subbuckets`` relative
    resolution over an unbounded range, and shard histograms from
    independent runs merge bucket-exactly (see :mod:`repro.obs.hist`).
    """

    kind = "loghistogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        subbuckets: int = DEFAULT_SUBBUCKETS,
        min_value: float = DEFAULT_MIN_VALUE,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(name, help, labelnames, max_series)
        self.subbuckets = int(subbuckets)
        self.min_value = float(min_value)

    def _new_series(self) -> LogHistogram:
        return LogHistogram(subbuckets=self.subbuckets,
                            min_value=self.min_value)

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labeled series."""
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._new_series()
            self._series[key] = state
        assert isinstance(state, LogHistogram)
        state.record(value)

    def series(self, **labels: object) -> LogHistogram:
        """The labeled series' histogram (created empty on first access)."""
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._new_series()
            self._series[key] = state
        assert isinstance(state, LogHistogram)
        return state

    def count(self, **labels: object) -> int:
        """Observations recorded in the labeled series."""
        state = self._series.get(self._key(labels))
        return state.count if isinstance(state, LogHistogram) else 0

    def sum(self, **labels: object) -> float:
        """Sum of observed values in the labeled series."""
        state = self._series.get(self._key(labels))
        return state.sum if isinstance(state, LogHistogram) else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        """Quantile estimate for the labeled series (0 when empty)."""
        state = self._series.get(self._key(labels))
        return state.quantile(q) if isinstance(state, LogHistogram) else 0.0

    def _params(self) -> Dict[str, object]:
        params = super()._params()
        params["subbuckets"] = self.subbuckets
        params["min_value"] = self.min_value
        return params

    def _series_dict(self, state: object) -> Dict[str, object]:
        assert isinstance(state, LogHistogram)
        return {
            "count": state.count,
            "sum": state.sum,
            "min": state.min,
            "max": state.max,
            "p50": state.quantile(0.50),
            "p99": state.quantile(0.99),
            "compact": state.to_compact(),
        }

    def _render_series(
        self, key: Tuple[str, ...], state: object
    ) -> List[str]:
        assert isinstance(state, LogHistogram)
        labels = self.labels_of(key)
        lines: List[str] = []
        for bound, cumulative in state.cumulative_buckets():
            bucket_labels = dict(labels)
            bucket_labels["le"] = _num(bound)
            lines.append(
                f"{self.name}_bucket{_label_text(bucket_labels)} {cumulative}"
            )
        lines.append(f"{self.name}_sum{_label_text(labels)} {_num(state.sum)}")
        lines.append(f"{self.name}_count{_label_text(labels)} {state.count}")
        return lines

    def render_text(self) -> str:
        """Expose as Prometheus ``histogram`` type (le-cumulative lines)."""
        lines: List[str] = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} histogram")
        for key, state in self.series_items():
            lines.extend(self._render_series(key, state))
        return "\n".join(lines)

    def _merge_state(self, mine: object, theirs: object) -> object:
        assert isinstance(mine, LogHistogram)
        assert isinstance(theirs, LogHistogram)
        return mine.merge(theirs)

    def _copy_state(self, state: object) -> object:
        assert isinstance(state, LogHistogram)
        return self._new_series().merge(state)

    def merge_from(self, other: "MetricFamily") -> None:
        """Fold another log-histogram family in (parameters must match)."""
        if isinstance(other, LogHistogramFamily) and (
                other.subbuckets != self.subbuckets
                or other.min_value != self.min_value):
            raise ObservabilityError(
                f"cannot merge log histogram {other.name!r}: parameters "
                f"differ (({other.subbuckets}, {other.min_value}) vs "
                f"({self.subbuckets}, {self.min_value}))"
            )
        super().merge_from(other)

    def _state_to_compact(self, state: object) -> object:
        assert isinstance(state, LogHistogram)
        return state.to_compact()

    def _state_from_compact(self, payload: object) -> object:
        assert isinstance(payload, Mapping)
        return LogHistogram.from_compact(payload)

    def to_compact(self) -> Dict[str, object]:
        """Compact form including the log-bucket parameters."""
        payload = super().to_compact()
        payload["subbuckets"] = self.subbuckets
        payload["min_value"] = self.min_value
        return payload


class MetricsRegistry:
    """Registry of metric families; the single hand-out point.

    ``counter``/``gauge``/``histogram``/``loghistogram`` are idempotent:
    asking for an existing family name returns the existing family (after
    checking the kind and label names agree), so independently
    instrumented components can share series without coordination.

    Args:
        max_snapshots: Bound on retained time-series snapshots
            (:meth:`record_snapshot`); oldest rows drop past it.
    """

    def __init__(self, max_snapshots: int = DEFAULT_MAX_SNAPSHOTS) -> None:
        self._families: Dict[str, MetricFamily] = {}
        #: Periodic scalar snapshots, oldest first (bounded ring).
        self.snapshots: Deque[Dict[str, object]] = deque(maxlen=max_snapshots)
        #: Snapshot rows evicted by the ring bound so far.
        self.snapshots_dropped = 0

    def __len__(self) -> int:
        return len(self._families)

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(
            family for _, family in sorted(self._families.items())
        )

    def _get_or_register(
        self, cls: type, name: str, kwargs: Dict[str, object]
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as {cls.kind}"  # type: ignore[attr-defined]
                )
            wanted = tuple(kwargs.get("labelnames", ()) or ())
            if wanted != existing.labelnames:
                raise ObservabilityError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, got {wanted}"
                )
            return existing
        family = cls(name, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Counter:
        """Register (or fetch) a counter family."""
        family = self._get_or_register(
            Counter, name,
            {"help": help, "labelnames": labelnames,
             "max_series": max_series},
        )
        assert isinstance(family, Counter)
        return family

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Gauge:
        """Register (or fetch) a gauge family."""
        family = self._get_or_register(
            Gauge, name,
            {"help": help, "labelnames": labelnames,
             "max_series": max_series},
        )
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Histogram:
        """Register (or fetch) a fixed-bucket histogram family."""
        family = self._get_or_register(
            Histogram, name,
            {"help": help, "labelnames": labelnames, "buckets": buckets,
             "max_series": max_series},
        )
        assert isinstance(family, Histogram)
        return family

    def loghistogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        subbuckets: int = DEFAULT_SUBBUCKETS,
        min_value: float = DEFAULT_MIN_VALUE,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> LogHistogramFamily:
        """Register (or fetch) a mergeable log-bucketed histogram family."""
        family = self._get_or_register(
            LogHistogramFamily, name,
            {"help": help, "labelnames": labelnames,
             "subbuckets": subbuckets, "min_value": min_value,
             "max_series": max_series},
        )
        assert isinstance(family, LogHistogramFamily)
        return family

    def get(self, name: str) -> Optional[MetricFamily]:
        """Look a family up by name (None when absent)."""
        return self._families.get(name)

    # -- time-series snapshots --------------------------------------------

    def scalar_values(self) -> Dict[str, float]:
        """Every counter/gauge series as ``name{labels}`` -> value."""
        values: Dict[str, float] = {}
        for family in self:
            if family.kind not in ("counter", "gauge"):
                continue
            for key, state in family.series_items():
                series_id = f"{family.name}{_label_text(family.labels_of(key))}"
                values[series_id] = float(state)  # type: ignore[arg-type]
        return values

    def record_snapshot(
        self, sim_time: float, wall_time: Optional[float] = None
    ) -> Dict[str, object]:
        """Append one sim-time/wall-time row of all scalar series.

        The caller decides the cadence (the device snapshots on a
        simulated-time interval; see
        :meth:`repro.obs.Observability.maybe_snapshot`).  Rows past the
        ``max_snapshots`` bound evict the oldest — a long soak keeps the
        most recent history, like the flight recorder's rings.
        """
        if len(self.snapshots) == self.snapshots.maxlen:
            self.snapshots_dropped += 1
        row: Dict[str, object] = {
            "sim_time": float(sim_time),
            "wall_time": float(wall_time) if wall_time is not None
            else perf_counter(),
            "values": self.scalar_values(),
        }
        self.snapshots.append(row)
        return row

    # -- merge & compact form ----------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's series into this one (returns self).

        Merge semantics by kind: counters **add**, histograms (fixed and
        log-bucketed) **add bucket-wise** — bucket-exact equal to one
        pooled run — and gauges take the incoming run's value (they are
        point-in-time readings, not accumulations).  Snapshot rows are
        concatenated in time order.
        """
        for family in other:
            mine = self._families.get(family.name)
            if mine is None:
                mine = self._get_or_register(
                    type(family), family.name, family._params()
                )
            mine.merge_from(family)
        if other.snapshots:
            combined = sorted(
                list(self.snapshots) + list(other.snapshots),
                key=lambda row: row["sim_time"],  # type: ignore[arg-type, return-value]
            )
            self.snapshots.clear()
            self.snapshots.extend(combined)
        return self

    def to_compact(self) -> Dict[str, object]:
        """Lossless JSON-ready form of every family (the fleet wire format).

        Unlike :meth:`to_dict` (a human-oriented rendering with derived
        quantiles), this form round-trips through
        :meth:`from_compact` into an equal registry and is what a fleet
        orchestrator should ship from worker processes to an aggregator.
        """
        return {
            "schema": COMPACT_REGISTRY_SCHEMA,
            "families": [family.to_compact() for family in self],
            "snapshots": list(self.snapshots),
        }

    @classmethod
    def from_compact(cls, payload: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from its :meth:`to_compact` form."""
        schema = payload.get("schema")
        if schema != COMPACT_REGISTRY_SCHEMA:
            raise ObservabilityError(
                f"not a compact metrics registry (schema {schema!r})"
            )
        kinds = {
            "counter": Counter,
            "gauge": Gauge,
            "histogram": Histogram,
            "loghistogram": LogHistogramFamily,
        }
        registry = cls()
        for family_payload in payload.get("families", ()):  # type: ignore[union-attr]
            kind = str(family_payload["kind"])
            if kind not in kinds:
                raise ObservabilityError(f"unknown metric kind {kind!r}")
            params: Dict[str, object] = {
                "help": family_payload.get("help", ""),
                "labelnames": tuple(family_payload.get("labelnames", ())),
                "max_series": family_payload.get(
                    "max_series", DEFAULT_MAX_SERIES),
            }
            if kind == "histogram":
                params["buckets"] = tuple(family_payload["buckets"])
            elif kind == "loghistogram":
                params["subbuckets"] = family_payload["subbuckets"]
                params["min_value"] = family_payload["min_value"]
            family = registry._get_or_register(
                kinds[kind], str(family_payload["name"]), params
            )
            family.load_compact_series(family_payload)
        for row in payload.get("snapshots", ()):  # type: ignore[union-attr]
            registry.snapshots.append(dict(row))
        return registry

    # -- renderers --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every family and series."""
        document: Dict[str, object] = {
            "families": [family.as_dict() for family in self],
        }
        if self.snapshots:
            document["snapshots"] = list(self.snapshots)
        return document

    def render_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` snapshot as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render_text(self) -> str:
        """Prometheus-exposition-style rendering of the whole registry."""
        return "\n".join(family.render_text() for family in self)

    def render_prometheus(self) -> str:
        """Strict Prometheus text exposition (format 0.0.4).

        Same content as :meth:`render_text` but guaranteed to end with a
        single trailing newline and to emit nothing for an empty registry
        — suitable for serving on a ``/metrics`` endpoint or writing to a
        node-exporter textfile.
        """
        body = self.render_text()
        return body + "\n" if body else ""
