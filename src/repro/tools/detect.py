"""Replay a trace through the detector.

Example::

    python -m repro.tools.detect attack.jsonl && echo clean || echo ALARM

Exit status: 0 when no alarm fired, 2 on alarm — composable in scripts.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.blockdev.trace import Trace
from repro.core.config import DetectorConfig
from repro.core.detector import RansomwareDetector
from repro.core.id3 import DecisionTree
from repro.core.pretrained import default_tree


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.detect",
        description="Run the SSD-Insider detector over a trace file.",
    )
    parser.add_argument("trace", help="JSON-lines trace path")
    parser.add_argument("--tree", default=None,
                        help="detector tree JSON (default: bundled)")
    parser.add_argument("--threshold", type=int, default=None,
                        help="alarm threshold (default: the paper's 3)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-slice timeline")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the detector over the trace; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.threshold is not None:
        config = DetectorConfig(threshold=args.threshold)
    else:
        config = DetectorConfig()
    tree = DecisionTree.load(args.tree) if args.tree else default_tree()
    detector = RansomwareDetector(tree=tree, config=config)
    trace = Trace.load(args.trace)
    for request in trace:
        detector.observe(request)
    detector.tick(trace.end_time + config.slice_duration)
    if not args.quiet:
        for event in detector.events:
            marker = " <- ALARM" if (detector.alarm_event is not None
                                     and event.slice_index
                                     == detector.alarm_event.slice_index) else ""
            print(f"slice {event.slice_index:4d}  verdict {event.verdict}  "
                  f"score {event.score:2d}{marker}")
    if detector.alarm_raised:
        alarm = detector.alarm_event
        print(f"ALARM at slice {alarm.slice_index} "
              f"(score {alarm.score} >= {config.threshold})")
        return 2
    print("no ransomware activity detected")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
