"""Fig. 4 — the sliding window score around an attack onset.

Shows the score at 0 while the background runs alone, climbing 1-per-slice
once the sample starts, crossing the alarm threshold (3) within a few
slices, and saturating toward the window size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.report import render_table
from repro.core.config import DetectorConfig
from repro.core.id3 import DecisionTree
from repro.core.pretrained import default_tree
from repro.train.evaluate import evaluate_run
from repro.rand import derive_seed
from repro.workloads.scenario import Scenario


@dataclass
class Fig4Result:
    """Score timeline for one run."""

    sample: str
    onset: float
    threshold: int
    scores: List[Tuple[int, int]]
    alarm_slice: Optional[int]

    def render(self) -> str:
        """Text rendering of the rows/series the paper reports."""
        lines = [
            f"Fig. 4 - window score timeline ({self.sample}, onset {self.onset:.1f}s, "
            f"threshold {self.threshold})"
        ]
        rows = []
        for index, score in self.scores:
            marker = ""
            if self.alarm_slice is not None and index == self.alarm_slice:
                marker = "<- ALARM"
            elif index == int(self.onset):
                marker = "<- onset"
            rows.append((index, score, "#" * score, marker))
        lines.append(render_table(("slice", "score", "", ""), rows))
        return "\n".join(lines)


def run(
    sample: str = "wannacry",
    background: Optional[str] = "websurfing",
    seed: int = 0,
    duration: float = 40.0,
    tree: Optional[DecisionTree] = None,
) -> Fig4Result:
    """Trace the score through one attack run."""
    config = DetectorConfig()
    scenario = Scenario("fig4", ransomware=sample, app=background, onset=15.0)
    scenario_run = scenario.build(seed=derive_seed(seed, "fig4"), duration=duration)
    outcome = evaluate_run(scenario_run, tree or default_tree(), config)
    alarm_slice = None
    for index, score in outcome.scores:
        if score >= config.threshold:
            alarm_slice = index
            break
    return Fig4Result(
        sample=sample,
        onset=scenario_run.onset,
        threshold=config.threshold,
        scores=outcome.scores,
        alarm_slice=alarm_slice,
    )


if __name__ == "__main__":
    print(run().render())
