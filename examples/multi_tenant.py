#!/usr/bin/env python
"""Multi-tenant defense: namespaces, blast radius, selective rollback.

Two tenants share one physical SSD through NVMe-style namespaces.  Tenant
A gets infected; tenant B keeps working.  The per-namespace detector locks
only A, and the selective rollback rewinds only A's LBA range — B's
writes made *during* the attack survive untouched.

This is the many-workloads-on-ONE-device story.  For the complementary
many-devices story — thousands of independent seeded SSDs run as one
population study — see ``examples/fleet_sweep.py`` and the fleet harness
(``python -m repro.tools.fleet``, handbook in docs/fleet.md).

Run:  python examples/multi_tenant.py
"""

from __future__ import annotations

from repro.nand.geometry import NandGeometry
from repro.ssd import SSDConfig, SimulatedSSD
from repro.ssd.namespaces import NamespaceManager
from repro.workloads import LbaRegion, make_ransomware


def main() -> None:
    device = SimulatedSSD(
        SSDConfig(
            geometry=NandGeometry(channels=2, ways=4, blocks_per_chip=128,
                                  pages_per_block=64),
            detector_enabled=False,   # per-namespace detectors instead
            queue_capacity=20_000,
        )
    )
    tenants = NamespaceManager(device, count=2)
    tenant_a, tenant_b = tenants[0], tenants[1]
    print(f"two namespaces of {tenant_a.num_lbas} blocks each")

    # Both tenants install their data.
    for lba in range(8_000):
        tenant_a.write(lba, b"A-doc-%d" % lba, now=device.clock.now + 0.0005)
        tenant_b.write(lba, b"B-doc-%d" % lba, now=device.clock.now + 0.0005)
    device.tick(30.0)
    tenant_a.tick(30.0)
    tenant_b.tick(30.0)

    # Tenant A detonates ransomware; tenant B keeps saving files.
    attack = make_ransomware("wannacry", LbaRegion(0, 8_000), start=30.0,
                             duration=30.0, seed=7)
    b_cursor = 0
    for request in attack.requests():
        for unit in request.split():
            if unit.is_read:
                tenant_a.read(unit.lba, now=unit.time)
            else:
                tenant_a.write(unit.lba, b"ciphertext", now=unit.time)
        # B works concurrently: one write per attack request.
        tenant_b.write(b_cursor % 8_000, b"B-fresh-%d" % b_cursor,
                       now=device.clock.now)
        b_cursor += 1
        if tenant_a.alarm_raised:
            break

    print(f"tenant A alarm: {tenant_a.alarm_raised}   "
          f"tenant B alarm: {tenant_b.alarm_raised}")
    print(f"tenant B wrote {b_cursor} blocks during the attack, "
          f"dropped: {tenant_b.stats.dropped_writes}")

    report = tenant_a.recover()
    print(f"selective rollback of namespace A: "
          f"{report.mapping_updates} mapping updates")

    a_ok = tenant_a.read(0)[:7] == b"A-doc-0"
    b_fresh = tenant_b.read(0)[:8] == b"B-fresh-"
    print(f"tenant A data restored: {a_ok}")
    print(f"tenant B's during-attack writes survived: {b_fresh}")


if __name__ == "__main__":
    main()
