"""Property-based tests (hypothesis) on the core data structures.

These assert the invariants the whole system leans on: the counting table's
index/entry consistency, the FTL's read-your-writes and rollback-restores-
past-state guarantees, the recovery queue's pin accounting, and the ID3
tree's structural soundness.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting_table import MAX_RUN_BLOCKS, CountingTable
from repro.core.id3 import DecisionTree
from repro.core.score import ScoreTracker
from repro.ftl.insider import InsiderFTL
from repro.ftl.recovery_queue import BackupEntry, RecoveryQueue
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry


# -- counting table ---------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["R", "W"]),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=15),
    ),
    max_size=200,
)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_counting_table_index_consistency(operations):
    """Every indexed LBA maps to an entry that covers it; every entry's
    span is indexed to itself or to nothing stale."""
    table = CountingTable()
    max_slice = 0
    for mode, lba, slice_index in operations:
        slice_index = max_slice = max(max_slice, slice_index)
        if mode == "R":
            table.record_read(lba, slice_index)
        else:
            table.record_write(lba, slice_index)
    entries = list(table)
    for entry in entries:
        assert 1 <= entry.rl <= MAX_RUN_BLOCKS
        assert entry.wl >= 0
    for lba in range(62):
        entry = table.entry_for(lba)
        if entry is not None:
            assert entry in entries
            assert entry.covers(lba)


@given(ops, st.integers(min_value=0, max_value=20))
@settings(max_examples=40, deadline=None)
def test_counting_table_expiry_total(operations, horizon):
    """After expiring everything, the table is truly empty."""
    table = CountingTable()
    max_slice = 0
    for mode, lba, slice_index in operations:
        slice_index = max_slice = max(max_slice, slice_index)
        if mode == "R":
            table.record_read(lba, slice_index)
        else:
            table.record_write(lba, slice_index)
    table.expire(oldest_live_slice=max_slice + 1 + horizon)
    assert len(table) == 0
    assert table.hash_entries == 0


# -- score tracker ----------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=1), max_size=100),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_score_equals_recent_window_sum(verdicts, window):
    tracker = ScoreTracker(window)
    for verdict in verdicts:
        tracker.push(verdict)
    assert tracker.score == sum(verdicts[-window:])
    assert 0 <= tracker.score <= window


# -- recovery queue -----------------------------------------------------------

queue_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),        # lba
        st.one_of(st.none(), st.integers(0, 500)),     # old_ppa
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False),                    # time delta
    ),
    max_size=80,
)


@given(queue_ops, st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_queue_pin_accounting(operations, capacity):
    """Pins always equal the distinct old PPAs of live entries."""
    queue = RecoveryQueue(retention=10.0, capacity=capacity)
    now = 0.0
    used_ppas = set()
    for lba, old_ppa, delta in operations:
        if old_ppa in used_ppas:
            continue  # a physical page becomes "old" only once
        if old_ppa is not None:
            used_ppas.add(old_ppa)
        now += delta
        queue.push(BackupEntry(lba=lba, old_ppa=old_ppa, new_ppa=None,
                               timestamp=now))
        assert len(queue) <= capacity
        live_pins = {e.old_ppa for e in queue if e.old_ppa is not None}
        assert queue.pinned_count == len(live_pins)
        for ppa in live_pins:
            assert queue.is_pinned(ppa)


# -- insider FTL -------------------------------------------------------------

ftl_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=25),  # lba
        st.integers(min_value=0, max_value=2),   # 0/1 write, 2 trim
    ),
    min_size=1,
    max_size=120,
)


def fresh_ftl() -> InsiderFTL:
    nand = NandArray(NandGeometry(channels=1, ways=1, blocks_per_chip=12,
                                  pages_per_block=8))
    return InsiderFTL(nand, op_ratio=0.45, queue_capacity=512)


@given(ftl_ops)
@settings(max_examples=40, deadline=None)
def test_ftl_read_your_writes(operations):
    """The FTL always returns the latest committed version."""
    ftl = fresh_ftl()
    shadow = {}
    now = 0.0
    for lba, action in operations:
        lba %= ftl.num_lbas
        now += 0.01
        if action == 2:
            ftl.trim(lba, now)
            shadow.pop(lba, None)
        else:
            payload = f"{lba}@{now:.2f}".encode()
            ftl.write(lba, now, payload)
            shadow[lba] = payload
    for lba, payload in shadow.items():
        assert ftl.read(lba).payload == payload


@given(ftl_ops)
@settings(max_examples=30, deadline=None)
def test_ftl_rollback_restores_pre_window_state(operations):
    """Whatever the attack does inside one window, rollback returns the
    device to its pre-window contents (the paper's core guarantee)."""
    ftl = fresh_ftl()
    baseline = {}
    for lba in range(0, ftl.num_lbas, 3):
        ftl.write(lba, 0.0, b"base%d" % lba)
        baseline[lba] = b"base%d" % lba
    # Window opens at t=100; all mutations happen inside it.
    now = 100.0
    for lba, action in operations:
        lba %= ftl.num_lbas
        now += 0.01
        if action == 2:
            ftl.trim(lba, now)
        else:
            ftl.write(lba, now, b"evil")
    ftl.rollback(now=now + 0.1)
    for lba in range(ftl.num_lbas):
        if lba in baseline:
            assert ftl.read(lba).payload == baseline[lba]
        else:
            assert not ftl.mapping.is_mapped(lba)


# -- ID3 ----------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.floats(-10, 10, allow_nan=False),
                  st.floats(-10, 10, allow_nan=False),
                  st.integers(0, 1)),
        min_size=4,
        max_size=120,
    )
)
@settings(max_examples=40, deadline=None)
def test_id3_structural_soundness(rows):
    """Fitted trees respect depth bounds and classify every input to 0/1."""
    X = [[a, b] for a, b, _ in rows]
    y = [label for _, _, label in rows]
    tree = DecisionTree(max_depth=4, min_samples_split=2, min_samples_leaf=1,
                        feature_names=("a", "b")).fit(X, y)
    assert tree.depth() <= 4
    for row in X:
        assert tree.predict_one(row) in (0, 1)
    # Serialisation roundtrip preserves behaviour.
    clone = DecisionTree.from_dict(tree.to_dict())
    assert clone.predict(X) == tree.predict(X)


@given(
    st.lists(st.floats(0, 1000, allow_nan=False), min_size=8, max_size=60),
    st.floats(0.1, 999.9, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_id3_learns_separable_threshold(values, threshold):
    """Any threshold-separable 1-D problem with enough mass on both sides
    is learned exactly on the training data."""
    labels = [int(v > threshold) for v in values]
    if len(set(labels)) < 2:
        return  # degenerate draw
    X = [[v, 0.0] for v in values]
    tree = DecisionTree(max_depth=4, min_samples_split=2, min_samples_leaf=1,
                        feature_names=("a", "b")).fit(X, labels)
    assert tree.accuracy(X, labels) == 1.0
