"""The simulated SSD: NAND + Insider FTL + in-firmware detector, one facade.

:class:`~repro.ssd.device.SimulatedSSD` is what a host "plugs in": it takes
block I/O requests, feeds every header to the detector, executes the
operation through the FTL, locks itself read-only on an alarm (§III-C), and
recovers by mapping-table rollback on demand.  :mod:`repro.ssd.timing`
carries the analytic per-operation latency model behind the Fig. 8
reproduction.
"""

from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.harness import DefenseOutcome, run_defense
from repro.ssd.smart import HostCommand, HostCommandInterface, smart_report
from repro.ssd.throughput import (
    ThroughputReport,
    peak_bandwidth_mib,
    simulate_throughput,
)
from repro.ssd.timing import FirmwareCosts, LatencyModel, TraceProfile, profile_trace

__all__ = [
    "DefenseOutcome",
    "FirmwareCosts",
    "HostCommand",
    "HostCommandInterface",
    "LatencyModel",
    "SSDConfig",
    "SimulatedSSD",
    "ThroughputReport",
    "TraceProfile",
    "peak_bandwidth_mib",
    "profile_trace",
    "run_defense",
    "simulate_throughput",
    "smart_report",
]
