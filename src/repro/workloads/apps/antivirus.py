"""Anti-virus full-scan workload.

§III-A lists "the operation of anti-virus software" among benign sources
of elevated I/O.  A full scan is a long, fast, sequential *read* sweep of
the whole disk plus occasional small quarantine/definition writes — lots
of I/O, practically no overwrites, so a header-only detector must stay
silent on it.  Not part of Table I; registered for FAR stress tests.
"""

from __future__ import annotations

from typing import Iterator

from repro.blockdev.request import IOMode, IORequest
from repro.workloads.base import LbaRegion, Workload


class AntivirusApp(Workload):
    """Full-disk sequential scan + rare quarantine writes."""

    def __init__(
        self,
        region: LbaRegion,
        scan_blocks_per_second: float = 2000.0,
        quarantine_prob: float = 0.001,
        name: str = "antivirus",
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__(name, region, start, duration, seed, time_scale)
        self.scan_blocks_per_second = scan_blocks_per_second
        self.quarantine_prob = quarantine_prob
        split = max(2, int(region.length * 0.98))
        self.scan_region = region.sub(0, split)
        self.quarantine_region = region.sub(split, region.length - split)
        self._quarantine_cursor = self.quarantine_region.start

    def requests(self) -> Iterator[IORequest]:
        """Yield the scan's read sweep plus rare quarantine writes."""
        now = self.start
        cursor = self.scan_region.start
        while True:
            length = min(16, self.scan_region.end - cursor)
            now += (length / self.scan_blocks_per_second) * self.time_scale
            if now >= self.deadline:
                return
            yield self._request(now, cursor, IOMode.READ, length)
            if self.rng.random() < self.quarantine_prob:
                # An infected file is copied into quarantine: a small
                # fresh write plus a log append.
                size = int(self.rng.integers(1, 9))
                size = min(size,
                           self.quarantine_region.end - self._quarantine_cursor)
                if size > 0:
                    yield self._request(now, self._quarantine_cursor,
                                        IOMode.WRITE, size)
                    self._quarantine_cursor += size
                if self._quarantine_cursor >= self.quarantine_region.end - 1:
                    self._quarantine_cursor = self.quarantine_region.start
            cursor += length
            if cursor >= self.scan_region.end:
                cursor = self.scan_region.start