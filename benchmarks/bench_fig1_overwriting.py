"""Fig. 1 — ransomware overwriting behaviour (correlation + cumulative)."""

from repro.experiments import fig1


def test_fig1_overwriting_behaviour(benchmark, publish):
    result = benchmark.pedantic(
        lambda: fig1.run(seed=1, duration=45.0), rounds=1, iterations=1
    )
    publish("fig1_overwriting", result.render())
    # Shape assertions: the figure's message must hold.
    assert all(c.pearson > 0.7 for c in result.correlations.values())
    totals = {k: (v[-1] if v else 0) for k, v in result.cumulative.items()}
    assert totals["wannacry"] > totals["cloudstorage"]
    assert totals["datawiping"] > totals["p2pdown"]
