"""Cloud-storage synchronisation workload (the paper's Dropbox scenario).

Sync clients work in bursts: a batch of changed files arrives, each is
written out-of-place (download to temp, rename), and the client's local
metadata database takes a few in-place updates.  Between bursts the disk is
quiet.  Overwrite volume is moderate — high enough to show up in Fig. 1b's
cumulative curves, far below ransomware's.
"""

from __future__ import annotations

from typing import Iterator

from repro.blockdev.request import IOMode, IORequest
from repro.workloads.base import LbaRegion, Workload
from repro.workloads.filespace import FileSpace


class CloudStorageApp(Workload):
    """Bursty file sync + metadata-db updates.

    Args:
        burst_rate_per_s: Average sync-burst arrival rate.
        files_per_burst: Files updated per burst.
        update_in_place_prob: Chance a file update rewrites the original
            extent (an overwrite run) instead of landing out-of-place.
    """

    def __init__(
        self,
        region: LbaRegion,
        burst_rate_per_s: float = 0.5,
        files_per_burst: int = 6,
        update_in_place_prob: float = 0.3,
        blocks_per_second: float = 450.0,
        name: str = "cloudstorage",
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__(name, region, start, duration, seed, time_scale)
        self.burst_rate_per_s = burst_rate_per_s
        self.files_per_burst = files_per_burst
        self.update_in_place_prob = update_in_place_prob
        self.blocks_per_second = blocks_per_second
        sync_blocks = max(2, int(region.length * 0.7))
        self.sync_space = FileSpace(region.sub(0, sync_blocks), self.rng, mean_blocks=12)
        self.temp_region = region.sub(sync_blocks, region.length - sync_blocks)

    def requests(self) -> Iterator[IORequest]:
        """Yield sync bursts: reads, new versions, metadata updates."""
        now = self.start
        temp_cursor = self.temp_region.start
        while True:
            now += self._gap(self.burst_rate_per_s)
            if now >= self.deadline:
                return
            for _ in range(int(self.rng.integers(1, self.files_per_burst + 1))):
                extent = self.sync_space.sample(self.rng)
                in_place = self.rng.random() < self.update_in_place_prob
                # The client reads the current version to delta-compare...
                for lba, length in _chunks(extent.start_lba, extent.length, 8):
                    now += length / self.blocks_per_second * self.time_scale
                    if now >= self.deadline:
                        return
                    yield self._request(now, lba, IOMode.READ, length)
                # ...then writes the new version.
                if in_place:
                    target, target_len = extent.start_lba, extent.length
                else:
                    target_len = min(extent.length, self.temp_region.end - temp_cursor)
                    target = temp_cursor
                    temp_cursor += target_len
                    if temp_cursor >= self.temp_region.end - 1:
                        temp_cursor = self.temp_region.start
                for lba, length in _chunks(target, max(1, target_len), 8):
                    now += length / self.blocks_per_second * self.time_scale
                    if now >= self.deadline:
                        return
                    yield self._request(now, lba, IOMode.WRITE, length)
                # Metadata DB: read-modify-write of one hot block.
                meta = self.temp_region.end - 1
                yield self._request(now, meta, IOMode.READ)
                yield self._request(now, meta, IOMode.WRITE)


def _chunks(start_lba: int, length: int, chunk: int):
    cursor = start_lba
    end = start_lba + length
    while cursor < end:
        size = min(chunk, end - cursor)
        yield cursor, size
        cursor += size
