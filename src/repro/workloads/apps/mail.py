"""E-mail synchronisation workload (the paper's OutlookSync scenario).

Mail clients keep everything in one big mailbox database (PST/OST); a sync
pass appends new messages and updates index pages in place — "DB update
after email synchronization" is the first benign overwrite source §III-A
names.  The shape is database-like but slower and burstier.
"""

from __future__ import annotations

from typing import Iterator

from repro.blockdev.request import IOMode, IORequest
from repro.workloads.base import LbaRegion, Workload


class MailSyncApp(Workload):
    """Mailbox appends + in-place index updates in sync bursts."""

    def __init__(
        self,
        region: LbaRegion,
        sync_rate_per_s: float = 0.25,
        messages_per_sync: int = 20,
        name: str = "outlooksync",
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__(name, region, start, duration, seed, time_scale)
        self.sync_rate_per_s = sync_rate_per_s
        self.messages_per_sync = messages_per_sync
        split = max(2, int(region.length * 0.85))
        self.store_region = region.sub(0, split)
        self.index_region = region.sub(split, region.length - split)

    def requests(self) -> Iterator[IORequest]:
        """Yield sync bursts: message appends and index updates."""
        now = self.start
        store_cursor = self.store_region.start
        while True:
            now += self._gap(self.sync_rate_per_s)
            if now >= self.deadline:
                return
            messages = int(self.rng.integers(1, self.messages_per_sync + 1))
            for _ in range(messages):
                # Append the message body (1-8 blocks of fresh data)...
                length = self._clip_store(store_cursor, int(self.rng.integers(1, 9)))
                yield self._request(now, store_cursor, IOMode.WRITE, length)
                store_cursor += length
                if store_cursor >= self.store_region.end:
                    store_cursor = self.store_region.start
                # ...and update 1-2 index pages in place.
                for _ in range(int(self.rng.integers(1, 3))):
                    page = self.index_region.start + int(
                        self.rng.integers(0, self.index_region.length)
                    )
                    yield self._request(now, page, IOMode.READ, 1)
                    yield self._request(now, page, IOMode.WRITE, 1)
                now += float(self.rng.exponential(0.05)) * self.time_scale
                if now >= self.deadline:
                    return

    def _clip_store(self, cursor: int, length: int) -> int:
        return max(1, min(length, self.store_region.end - cursor))
