"""One runnable experiment per table/figure of the paper's evaluation.

Every module exposes ``run(...) -> <Result>`` returning a structured result
with a ``render()`` method that prints the same rows/series the paper
reports.  The ``benchmarks/`` suite wraps these, and ``EXPERIMENTS.md``
records paper-vs-measured for each.

=========  =============================================================
Module     Paper content
=========  =============================================================
fig1       Ransomware overwriting behaviour (activity correlation +
           cumulative overwrite counts)
fig2       The six features' correlation and cumulative panels
fig4       Sliding-window score behaviour around an attack onset
table1     The training/testing scenario matrix
fig7       FAR/FRR vs score threshold per background category
table2     File-system consistency after attack + rollback + fsck
fig8       Per-op software latency: baseline FTL vs +SSD-Insider
fig9       GC page copies: conventional vs Insider FTL
table3     DRAM requirements of the detector structures
claims     §V headline claims: detection <10 s, recovery <1 s, 0 % loss
=========  =============================================================

Beyond the paper (ablations and extension studies):

===================  ======================================================
ablation_features    leave-one-feature-out FAR/FRR at the operating point
ablation_classifier  ID3 vs logistic regression vs a decision stump
ablation_window      window-size / threshold operating-point sweep
ablation_gc          GC victim-policy comparison (greedy / cost-benefit /
                     wear-aware), conventional and Insider
evasion              attack-rate sweep: detection probability vs damage
latency_profile      per-sample detection-latency statistics
===================  ======================================================
"""

from repro.experiments import (  # noqa: F401
    ablation_classifier,
    ablation_features,
    ablation_gc,
    ablation_window,
    claims,
    evasion,
    latency_profile,
    fig1,
    fig2,
    fig4,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
    table3,
)

__all__ = [
    "ablation_classifier",
    "ablation_features",
    "ablation_gc",
    "ablation_window",
    "claims",
    "evasion",
    "fig1",
    "fig2",
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "latency_profile",
    "table1",
    "table2",
    "table3",
]
