"""Analysis utilities behind the figure reproductions.

* :mod:`repro.analysis.correlation` — per-slice feature value vs
  ransomware active time (the scatter panels of Figs 1a and 2a/c/e/g/h);
* :mod:`repro.analysis.cumulative` — cumulative feature series per
  workload (the cumulative panels of Figs 1b and 2b/d/f);
* :mod:`repro.analysis.report` — fixed-width text tables every experiment
  prints its rows with.
"""

from repro.analysis.correlation import CorrelationResult, feature_activity_correlation
from repro.analysis.cumulative import cumulative_feature_series
from repro.analysis.report import render_table

__all__ = [
    "CorrelationResult",
    "cumulative_feature_series",
    "feature_activity_correlation",
    "render_table",
]
