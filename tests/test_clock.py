"""Simulated clock behaviour."""

import pytest

from repro.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now == pytest.approx(1.5)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_repr_mentions_time(self):
        assert "3.5" in repr(SimClock(3.5))
