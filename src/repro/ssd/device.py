"""The simulated SSD device: detector-in-the-data-path + recoverable FTL.

Request flow (mirroring the paper's firmware):

1. the request *header* is handed to the detector (payloads are never
   inspected);
2. the operation executes through the Insider FTL (out-of-place writes,
   recovery-queue logging, GC as needed);
3. if the detector's score crosses the threshold, the device raises the
   alarm, goes **read-only** — "ignoring all the writes sent to it"
   (§III-C) — and waits for the host to either :meth:`SimulatedSSD.recover`
   (mapping-table rollback) or :meth:`SimulatedSSD.dismiss_alarm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.blockdev.request import IOMode, IORequest
from repro.clock import SimClock
from repro.core.detector import DetectionEvent, RansomwareDetector
from repro.core.id3 import DecisionTree
from repro.errors import (
    ConfigError,
    DeviceReadOnlyError,
    ExhaustedRetriesError,
    RecoveryError,
    UncorrectableReadError,
    UnmappedReadError,
)
from repro.faults.injector import FaultInjector
from repro.ftl.insider import InsiderFTL, RollbackReport
from repro.nand.array import NandArray
from repro.obs import Observability
from repro.ssd.config import SSDConfig
from repro.units import BLOCK_SIZE


@dataclass
class DeviceStats:
    """Host-visible operation counters."""

    reads: int = 0
    writes: int = 0
    dropped_writes: int = 0
    unmapped_reads: int = 0
    #: Host reads whose page stayed corrupt after the ECC retry budget
    #: (served as zeroes — data lost to the media, not to recovery).
    uncorrectable_reads: int = 0
    #: Host writes abandoned because every remap target also failed
    #: program verify (the device locks down when this fires).
    failed_writes: int = 0
    #: Power cycles survived (host-invoked or injected).
    power_losses: int = 0


class SimulatedSSD:
    """A NAND array + Insider FTL + in-firmware detector behind one API.

    Args:
        config: Device configuration (geometry, detector, retention...).
        tree: Detector tree; defaults to the library's pretrained tree.
        on_alarm: Host callback for the paper's "ransomware attack alarm"
            custom command (§III-C footnote 2).
        strict_read_only: Raise on writes while locked instead of silently
            dropping them (the paper's firmware ignores them; strict mode
            helps tests catch unintended writes).
        obs: Observability bundle shared by the device, the detector and
            the FTL (per-request spans, detector slice events, GC spans,
            queue/latency metrics); disabled by default, costing nothing.
    """

    def __init__(
        self,
        config: Optional[SSDConfig] = None,
        tree: Optional[DecisionTree] = None,
        on_alarm: Optional[Callable[[DetectionEvent], None]] = None,
        strict_read_only: bool = False,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config or SSDConfig.small()
        self.clock = SimClock()
        self.obs = obs if obs is not None else Observability.off()
        self.obs.bind_clock(self.clock)
        #: The black-box flight recorder, when the bundle carries one.
        self.fr = self.obs.flightrec
        #: Incident bundles cut so far (alarm, media alarm, manual), in
        #: trigger order; each is a self-contained JSON-ready dict that
        #: ``python -m repro.tools.forensics`` renders as a report.
        self.incidents: List[Dict[str, object]] = []
        #: Deterministic media-fault source (None on a healthy device).
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(self.config.faults)
            if self.config.faults is not None else None
        )
        #: Cached profiler handle (None disarmed) — hot paths test this
        #: once instead of chasing ``self.obs.profiler`` per request.
        self._prof = self.obs.profiler
        #: Whether periodic registry snapshots are due on this device.
        self._snapshots_on = self.obs.snapshot_interval is not None
        self.nand = NandArray(
            self.config.geometry,
            self.config.latencies,
            faults=self.fault_injector,
            ecc=self.config.ecc,
        )
        # The NAND array takes no obs bundle (it sits below the FTL in the
        # constructor chain); hand it the profiler directly.
        self.nand.profiler = self._prof
        self.ftl = InsiderFTL(
            self.nand,
            op_ratio=self.config.op_ratio,
            gc_policy=self.config.gc_policy,
            retention=self.config.retention,
            queue_capacity=self.config.queue_capacity,
            obs=self.obs,
            mapping_backend=self.config.mapping_backend,
        )
        self.detector: Optional[RansomwareDetector] = None
        if self.config.detector_enabled:
            self.detector = RansomwareDetector(
                tree=tree,
                config=self.config.detector,
                on_alarm=self._alarm_hook,
                obs=self.obs,
            )
        self._host_alarm_callback = on_alarm
        self.strict_read_only = strict_read_only
        self._m_req_latency = None
        self._m_requests = None
        self._m_blocks = None
        self._m_dropped = None
        #: Whether per-request spans/metrics are armed at all.  Profiler-
        #: only bundles (the ``repro.tools.profile`` harness) skip the
        #: whole :meth:`_observed` wrapper — wall-clock sampling and
        #: counter updates would otherwise dominate what the profile is
        #: trying to measure.
        self._observe_requests = (
            self.obs.armed_tracer or self.obs.armed_metrics
        )
        if self.obs.armed_metrics:
            metrics = self.obs.metrics
            self._m_req_latency = metrics.loghistogram(
                "ssd_request_latency_seconds",
                "Host wall-clock time servicing one submitted request, "
                "by opcode.",
                labelnames=("mode",),
            )
            self._m_requests = metrics.counter(
                "ssd_requests_total", "Requests submitted, by opcode.",
                labelnames=("mode",),
            )
            self._m_blocks = metrics.counter(
                "ssd_blocks_total",
                "Logical blocks transferred, by opcode.",
                labelnames=("mode",),
            )
            self._m_dropped = metrics.counter(
                "ssd_dropped_writes_total",
                "Writes dropped by the read-only lockdown.",
            )
        self.read_only = False
        #: Sticky media-health flag: set when ECC or remap retries were
        #: exhausted; cleared only by a power cycle (fresh firmware boot).
        self.degraded = False
        self.stats = DeviceStats()
        self.rollback_reports: List[RollbackReport] = []
        self.wear_leveler = None
        if self.config.wear_level is not None:
            self.wear_leveler = self.ftl.attach_wear_leveling(
                self.config.wear_level
            )
        self.scrubber = None
        if self.config.scrub is not None:
            from repro.ftl.scrub import ReadScrubber

            self.scrubber = ReadScrubber(self.ftl, self.config.scrub)
        self._last_maintenance = 0.0

    # -- capacity ----------------------------------------------------------

    @property
    def num_lbas(self) -> int:
        """Logical capacity in 4-KB blocks."""
        return self.ftl.num_lbas

    @property
    def capacity_bytes(self) -> int:
        """Logical capacity in bytes."""
        return self.num_lbas * BLOCK_SIZE

    @property
    def alarm_raised(self) -> bool:
        """True while an unhandled ransomware alarm is pending."""
        return self.detector is not None and self.detector.alarm_raised

    # -- host I/O interface ------------------------------------------------

    def submit(self, request: IORequest) -> None:
        """Execute one (possibly multi-block) request from a trace."""
        self.clock.advance_to(request.time)
        self._maybe_power_loss()
        if self._snapshots_on:
            self.obs.maybe_snapshot(
                self.clock.now, before=self.refresh_obs_metrics
            )
        if not self._observe_requests:
            prof = self._prof
            if prof is None:
                self._execute(request)
                return
            with prof.section("ssd.submit"):
                self._execute(request)
            return
        prof = self._prof
        if prof is None:
            self._observed(request, lambda: self._execute(request))
            return
        with prof.section("ssd.submit"):
            self._observed(request, lambda: self._execute(request))

    def submit_batch(self, requests) -> int:
        """Execute requests in order; returns how many were executed.

        The batched front door for trace replay: per-request span/timing/
        dict overhead is hoisted out of the loop, and on an uninstrumented
        fault-free device the whole batch runs inside one profiler section
        with only the clock advance and the operation itself per request.

        Stops early — returning the count executed so far, which is then
        less than ``len(requests)`` — when a request flips the device
        read-only (alarm lockdown or write-path media degradation), so a
        replay harness sees the lockdown at the same request boundary a
        per-request ``submit()`` loop would and can recover/dismiss before
        resubmitting the remainder.  Requests submitted while the device
        is *already* read-only execute normally (reads served, writes
        dropped), exactly like :meth:`submit`.
        """
        executed = 0
        was_read_only = self.read_only
        if not (self._observe_requests or self._snapshots_on
                or self.fault_injector is not None):
            advance = self.clock.advance_to
            execute = self._execute
            prof = self._prof
            if prof is None:
                for request in requests:
                    advance(request.time)
                    execute(request)
                    executed += 1
                    if self.read_only and not was_read_only:
                        break
                return executed
            with prof.section("ssd.submit"):
                for request in requests:
                    advance(request.time)
                    execute(request)
                    executed += 1
                    if self.read_only and not was_read_only:
                        break
            return executed
        for request in requests:
            self.submit(request)
            executed += 1
            if self.read_only and not was_read_only:
                break
        return executed

    def _observed(self, request, operate):
        """Run one host operation under the request span + metrics."""
        mode = request.mode.value
        start = perf_counter()
        with self.obs.tracer.span(
            "ssd.request", category="io",
            mode=mode, lba=request.lba, length=request.length,
        ):
            result = operate()
        if self._m_req_latency is not None:
            self._m_req_latency.observe(perf_counter() - start, mode=mode)
            self._m_requests.inc(mode=mode)
            self._m_blocks.inc(request.length, mode=mode)
        self.obs.tracer.counter(
            "recovery_queue_depth", len(self.ftl.queue), category="queue"
        )
        return result

    def _execute(self, request: IORequest) -> None:
        if self.detector is not None:
            self.detector.observe(request)
        if self.fr is not None:
            self._flight_note(request)
        if request.mode is IOMode.READ:
            for lba in request.lbas():
                self._read_block(lba)
            return
        # Trace writes carry no payload, so a whole write request can run
        # as one FTL span — identical per-block operation order, but the
        # profiler attributes translate/queue time once per request
        # instead of once per block.  Falls back to the per-block loop
        # whenever a block could take a divergent path: already
        # read-only (drop accounting), fault injection (program failures
        # can flip read-only mid-request), or a content-aware detector
        # (per-block observe_write hook).
        if (not self.read_only and self.fault_injector is None
                and (self.detector is None
                     or not hasattr(self.detector.tree, "observe_write"))):
            self.stats.writes += request.length
            self.ftl.write_span(request.lba, request.length, self.clock.now)
            return
        for lba in request.lbas():
            self._write_block(lba, None)

    def read(self, lba: int, now: Optional[float] = None) -> bytes:
        """Read one 4-KB block; unmapped blocks read as zeroes."""
        timestamp = self._stamp(now)
        request = IORequest(time=timestamp, lba=lba, mode=IOMode.READ)
        prof = self._prof
        if prof is None:
            return self._read_request(request, lba)
        with prof.section("ssd.read"):
            return self._read_request(request, lba)

    def _read_request(self, request: IORequest, lba: int) -> bytes:
        if self.detector is not None:
            self.detector.observe(request)
        if self.fr is not None:
            self._flight_note(request)
        if not self._observe_requests:
            return self._read_block(lba)
        return self._observed(request, lambda: self._read_block(lba))

    def write(self, lba: int, payload: Optional[bytes] = None,
              now: Optional[float] = None) -> None:
        """Write one 4-KB block (dropped/refused while read-only)."""
        timestamp = self._stamp(now)
        request = IORequest(time=timestamp, lba=lba, mode=IOMode.WRITE)
        prof = self._prof
        if prof is None:
            self._write_request(request, lba, payload)
            return
        with prof.section("ssd.write"):
            self._write_request(request, lba, payload)

    def _write_request(self, request: IORequest, lba: int,
                       payload: Optional[bytes]) -> None:
        if self.detector is not None:
            self.detector.observe(request)
        if self.fr is not None:
            self._flight_note(request)
        if not self._observe_requests:
            self._write_block(lba, payload)
            return
        self._observed(request, lambda: self._write_block(lba, payload))

    def trim(self, lba: int, now: Optional[float] = None) -> None:
        """Discard one block (used by the filesystem on delete)."""
        timestamp = self._stamp(now)
        if self.read_only:
            if self.strict_read_only:
                raise DeviceReadOnlyError("device is read-only after an alarm")
            self.stats.dropped_writes += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            return
        prof = self._prof
        if prof is None:
            self.ftl.trim(lba, timestamp)
            return
        with prof.section("ssd.trim"):
            self.ftl.trim(lba, timestamp)

    def tick(self, now: float) -> None:
        """Advance time without I/O (lets quiet periods decay the score).

        Background maintenance (read-disturb scrubbing) also runs here —
        idle time is when firmware does its housekeeping.
        """
        self.clock.advance_to(now)
        self._maybe_power_loss()
        if self._snapshots_on:
            self.obs.maybe_snapshot(
                self.clock.now, before=self.refresh_obs_metrics
            )
        if self.detector is not None:
            self.detector.tick(now)
        self._maybe_maintain()

    def _maybe_maintain(self) -> None:
        now = self.clock.now
        if now - self._last_maintenance < self.config.maintenance_interval:
            return
        self._last_maintenance = now
        if self.scrubber is not None and not self.read_only:
            self.scrubber.sweep()

    # -- alarm & recovery ---------------------------------------------------

    def recover(self) -> RollbackReport:
        """Roll the mapping table back one retention window (Fig. 5).

        Returns the rollback report; the device becomes writable again and
        the detector restarts clean (the paper asks the user to reboot and
        clean the ransomware; the detector must not keep alarming on the
        attack it already undid).
        """
        if self.detector is not None and not self.detector.alarm_raised:
            raise RecoveryError("no alarm is pending; nothing to recover from")
        # Freeze the queue occupancy the rollback is about to drain — the
        # incident bundle reports the headroom the recovery actually had.
        queue_at_rollback = (
            self._queue_state() if self.fr is not None else None
        )
        if not self.obs.enabled:
            report = self.ftl.rollback(self.clock.now)
        else:
            with self.obs.tracer.span(
                "ssd.rollback", category="recovery"
            ) as span:
                report = self.ftl.rollback(self.clock.now)
                span.set("entries_scanned", report.entries_scanned)
                span.set("entries_applied", report.entries_applied)
                span.set("lbas_restored", report.lbas_restored)
                span.set("lbas_unmapped", report.lbas_unmapped)
        self.rollback_reports.append(report)
        if self.fr is not None:
            self.fr.record_event(
                "rollback", self.clock.now,
                entries_scanned=report.entries_scanned,
                entries_applied=report.entries_applied,
                lbas_restored=report.lbas_restored,
                lbas_unmapped=report.lbas_unmapped,
            )
            if self.incidents:
                # Annotate the incident that triggered this recovery with
                # what the rollback did and the queue state it drained.
                self.incidents[-1]["rollback"] = {
                    "time": self.clock.now,
                    "queue_at_rollback": queue_at_rollback,
                    "entries_scanned": report.entries_scanned,
                    "entries_applied": report.entries_applied,
                    "lbas_restored": report.lbas_restored,
                    "lbas_unmapped": report.lbas_unmapped,
                    "mapping_updates": report.mapping_updates,
                }
        self.read_only = False
        if self.detector is not None:
            self.detector.reset()
        if self.obs.enabled:
            self.refresh_obs_metrics()
        return report

    def power_cycle(self) -> None:
        """Simulate a power loss and restart.

        DRAM contents vanish; the FTL rebuilds its mapping — and the
        recovery queue — from the NAND array's out-of-band records, and
        the detector restarts cold (its counting table held at most one
        window of transient state anyway).  Grown and factory bad blocks
        stay retired (their flags live in the NAND array), and the
        degraded latch clears — a fresh boot re-assesses media health.
        """
        self.stats.power_losses += 1
        self.ftl = InsiderFTL.rebuild(
            self.nand,
            op_ratio=self.config.op_ratio,
            gc_policy=self.config.gc_policy,
            retention=self.config.retention,
            queue_capacity=self.config.queue_capacity,
            obs=self.obs,
            mapping_backend=self.config.mapping_backend,
        )
        if self.wear_leveler is not None:
            self.wear_leveler = self.ftl.attach_wear_leveling(
                self.config.wear_level
            )
        if self.scrubber is not None:
            from repro.ftl.scrub import ReadScrubber

            self.scrubber = ReadScrubber(self.ftl, self.config.scrub)
        if self.detector is not None:
            self.detector.reset()
        self.read_only = False
        self.degraded = False

    def dismiss_alarm(self) -> None:
        """Host says "false alarm": unlock writes, keep the data as is."""
        self.read_only = False
        if self.detector is not None:
            self.detector.reset()

    def _alarm_hook(self, event: DetectionEvent) -> None:
        self.read_only = True
        if self.obs.enabled:
            self.obs.tracer.instant(
                "ssd.lockdown", category="recovery",
                sim_time=event.time, slice_index=event.slice_index,
                score=event.score,
            )
        if self.fr is not None:
            # The detector attributed the alarming slice before invoking
            # this hook, so the bundle's attribution ring already ends on
            # the root-to-leaf path that raised the score past threshold.
            self._cut_incident(
                "alarm", event.time,
                details={
                    "slice_index": event.slice_index,
                    "score": event.score,
                    "threshold": self.detector.config.threshold,
                },
            )
        if self._host_alarm_callback is not None:
            self._host_alarm_callback(event)

    # -- observability -------------------------------------------------------

    def refresh_obs_metrics(self) -> None:
        """Fold current device/FTL/detector state into the gauges.

        Incremental counters update inline on the data path; the derived
        values (write amplification, utilization, queue depth, score) are
        snapshots, so they are recomputed here — call this before
        rendering the registry.  A no-op while observability is disabled.
        """
        if not self.obs.enabled:
            return
        metrics = self.obs.metrics
        metrics.gauge(
            "recovery_queue_depth", "Backup entries currently queued."
        ).set(len(self.ftl.queue))
        metrics.gauge(
            "recovery_queue_pinned_pages",
            "Old-version physical pages pinned against GC.",
        ).set(self.ftl.pinned_pages())
        metrics.gauge(
            "ftl_write_amplification",
            "(host writes + GC copies) / host writes.",
        ).set(self.ftl.stats.write_amplification)
        metrics.gauge(
            "ftl_utilization", "Fraction of logical space currently mapped."
        ).set(self.ftl.utilization())
        metrics.gauge(
            "ssd_recoveries", "Mapping-table rollbacks completed."
        ).set(len(self.rollback_reports))
        reliability = self.nand.reliability
        metrics.gauge(
            "nand_corrected_reads",
            "Reads with raw bit errors corrected by ECC (in-line or retry).",
        ).set(reliability.corrected_reads)
        metrics.gauge(
            "nand_uncorrectable_reads",
            "Reads abandoned after the ECC retry budget (data lost).",
        ).set(reliability.uncorrectable_reads)
        metrics.gauge(
            "ftl_bad_blocks", "Blocks retired as bad (factory + grown)."
        ).set(self.ftl.allocator.retired_blocks)
        if self.detector is not None:
            metrics.gauge(
                "detector_score",
                "Current sliding-window score (0..window size).",
            ).set(self.detector.score)

    # -- flight recorder & incident bundles ---------------------------------

    def snapshot_incident(self, reason: str = "manual") -> Dict[str, object]:
        """Cut an incident bundle on demand (post-mortem of a live run).

        The automatic triggers are the alarm, a media alarm, and the
        degraded latch; this is the escape hatch for "the run looks wrong,
        freeze the black box now".  Requires an armed flight recorder.
        """
        if self.fr is None:
            raise ConfigError(
                "no flight recorder armed; build the device with "
                "Observability.on(flight=FlightRecorder(...))"
            )
        return self._cut_incident(reason, self.clock.now)

    def _flight_note(self, request: IORequest) -> None:
        """Fold one host request into the flight recorder's rings."""
        self.fr.record_request(request)
        self.fr.sample_queue(
            request.time, len(self.ftl.queue), self.ftl.pinned_pages()
        )

    def _cut_incident(
        self,
        trigger: str,
        sim_time: float,
        details: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Snapshot the flight recorder + live device state into a bundle."""
        bundle = self.fr.snapshot(
            trigger, sim_time, details=details, extra=self._incident_extra()
        )
        self.incidents.append(bundle)
        if self.obs.enabled:
            self.obs.tracer.instant(
                "ssd.incident_snapshot", category="recovery",
                sim_time=sim_time, trigger=trigger,
            )
        return bundle

    def _queue_state(self) -> Dict[str, object]:
        """Recovery-queue occupancy and headroom, JSON-ready."""
        queue = self.ftl.queue
        depth = len(queue)
        capacity = queue.capacity
        return {
            "depth": depth,
            "capacity": capacity,
            "headroom": capacity - depth if capacity is not None else None,
            "pinned_pages": queue.pinned_count,
            "evictions": queue.evictions,
            "retention_seconds": queue.retention,
            "memory_bytes": queue.memory_bytes(),
        }

    def _incident_extra(self) -> Dict[str, object]:
        """The live-state sections stamped into every incident bundle."""
        detector_section: Optional[Dict[str, object]] = None
        if self.detector is not None:
            detector = self.detector
            alarm = detector.alarm_event
            detector_section = {
                "config": {
                    "slice_duration": detector.config.slice_duration,
                    "window_slices": detector.config.window_slices,
                    "threshold": detector.config.threshold,
                },
                "score": detector.score,
                "window": detector.window.snapshot(),
                "fast_forwarded_slices": detector.fast_forwarded_slices,
                "alarm_event": None if alarm is None else {
                    "time": alarm.time,
                    "slice_index": alarm.slice_index,
                    "score": alarm.score,
                },
            }
        return {
            "device": {
                "read_only": self.read_only,
                "degraded": self.degraded,
                "reads": self.stats.reads,
                "writes": self.stats.writes,
                "dropped_writes": self.stats.dropped_writes,
                "failed_writes": self.stats.failed_writes,
                "uncorrectable_reads": self.stats.uncorrectable_reads,
                "unmapped_reads": self.stats.unmapped_reads,
                "power_losses": self.stats.power_losses,
            },
            "detector": detector_section,
            "recovery_queue": self._queue_state(),
            "faults": (
                self.fault_injector.stats.as_dict()
                if self.fault_injector is not None else None
            ),
        }

    # -- internals -----------------------------------------------------------

    def _stamp(self, now: Optional[float]) -> float:
        if now is not None:
            self.clock.advance_to(now)
        self._maybe_power_loss()
        return self.clock.now

    def _maybe_power_loss(self) -> None:
        """Fire the scheduled whole-device power loss once its time comes.

        The cut lands on a request boundary (page programs are atomic in
        this simulator); everything DRAM-resident — mapping table,
        recovery queue, detector state — vanishes and is rebuilt by
        :meth:`power_cycle`.
        """
        if (self.fault_injector is not None
                and self.fault_injector.power_loss_due(self.clock.now)):
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "ssd.power_loss", category="reliability",
                    sim_time=self.clock.now,
                )
            if self.fr is not None:
                self.fr.record_event("power_loss", self.clock.now)
            self.power_cycle()

    def _media_degrade(self, reason: str, lockdown: bool, **details) -> None:
        """Graceful degradation: raise the media alarm, optionally lock down.

        Write-path exhaustion locks the device read-only (the media can
        no longer absorb writes reliably; freezing preserves the mapping
        and the recovery queue).  Read-path exhaustion alarms without
        lockdown — the lost page is already lost, and refusing new writes
        would not bring it back.
        """
        self.degraded = True
        if lockdown:
            self.read_only = True
        if self.obs.enabled:
            self.obs.tracer.instant(
                "ssd.media_alarm", category="reliability",
                sim_time=self.clock.now, reason=reason,
                lockdown=lockdown, **details,
            )
        if self.fr is not None:
            self.fr.record_event(
                "media_alarm", self.clock.now,
                reason=reason, lockdown=lockdown, **details,
            )
            self._cut_incident(
                "media_alarm", self.clock.now,
                details={"cause": reason, "lockdown": lockdown, **details},
            )

    def _read_block(self, lba: int) -> bytes:
        self.stats.reads += 1
        try:
            info = self.ftl.read(lba, self.clock.now)
        except UnmappedReadError:
            self.stats.unmapped_reads += 1
            return bytes(BLOCK_SIZE)
        except UncorrectableReadError as exc:
            self.stats.uncorrectable_reads += 1
            self._media_degrade("uncorrectable_read", lockdown=False,
                                lba=lba, retries=exc.retries)
            return bytes(BLOCK_SIZE)
        if info.payload is None:
            return bytes(BLOCK_SIZE)
        return info.payload

    def _write_block(self, lba: int, payload: Optional[bytes]) -> None:
        if self.read_only:
            if self.strict_read_only:
                raise DeviceReadOnlyError("device is read-only after an alarm")
            self.stats.dropped_writes += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            return
        # Content-aware models (repro.core.entropy.HybridDetector) sample
        # write payloads as they stream through the firmware.
        if self.detector is not None and hasattr(self.detector.tree,
                                                 "observe_write"):
            self.detector.tree.observe_write(payload)
        self.stats.writes += 1
        try:
            self.ftl.write(lba, self.clock.now, payload)
        except ExhaustedRetriesError:
            self.stats.failed_writes += 1
            self._media_degrade("program_retries_exhausted", lockdown=True,
                                lba=lba)
