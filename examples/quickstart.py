#!/usr/bin/env python
"""Quickstart: an SSD that defends itself.

Builds a simulated SSD with SSD-Insider firmware, fills it with user data,
unleashes WannaCry's block-level behaviour against it, and shows the full
defense loop: the in-firmware detector raises the alarm within seconds, the
device goes read-only, one mapping-table rollback undoes the attack, and
every byte of user data is back.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.nand.geometry import NandGeometry
from repro.ssd import SSDConfig, SimulatedSSD
from repro.workloads import LbaRegion, make_ransomware


def main() -> None:
    # A 256-MiB simulated SSD (the structure scales; see DESIGN.md).
    # The recovery queue must absorb one detection window of worst-case
    # overwrites — the paper's Table III provisions 2,621,440 entries for
    # its 512-GB card; we provision proportionally for a fast attacker on
    # a small device.
    config = SSDConfig(
        geometry=NandGeometry(channels=2, ways=4, blocks_per_chip=128,
                              pages_per_block=64),
        queue_capacity=20_000,
    )
    ssd = SimulatedSSD(config)
    print(f"device ready: {ssd.num_lbas} logical 4-KB blocks")

    # 1. The user writes their data.
    user_blocks = 20_000
    for lba in range(user_blocks):
        payload = f"user data block {lba}".encode().ljust(64, b".")
        ssd.write(lba, payload, now=0.0005 * lba)
    snapshot = {lba: ssd.read(lba) for lba in range(0, user_blocks, 173)}
    ssd.tick(30.0)
    print(f"wrote {user_blocks} blocks of user data")

    # 2. Ransomware strikes: reads each file, encrypts, overwrites.
    attack = make_ransomware(
        "wannacry", LbaRegion(0, user_blocks), start=30.0, duration=30.0, seed=7
    )
    for request in attack.requests():
        ssd.submit(request)
        if ssd.alarm_raised:
            break
    assert ssd.alarm_raised, "the detector should have fired"
    latency = ssd.clock.now - 30.0
    print(f"ALARM after {latency:.1f}s of attack - device is now read-only")
    print(f"(writes the attacker issued after the alarm were dropped: "
          f"{ssd.stats.dropped_writes})")

    # 3. The user confirms; the firmware rolls the mapping table back.
    report = ssd.recover()
    print(
        f"recovered: {report.mapping_updates} mapping entries updated, "
        f"{report.lbas_restored} blocks restored, "
        f"{report.lbas_unmapped} fresh ciphertext blocks discarded"
    )

    # 4. Audit: every sampled block is bit-exact again.
    corrupted = sum(1 for lba, data in snapshot.items() if ssd.read(lba) != data)
    print(f"data audit: {corrupted} corrupted blocks out of {len(snapshot)} sampled")
    assert corrupted == 0, "perfect recovery should lose nothing"
    print("perfect recovery - 0% data loss")


if __name__ == "__main__":
    main()
