"""Feature ablation: what does each of the six features contribute?

Retrains the detector with one feature removed at a time and re-runs the
Fig. 7 evaluation at the paper's operating point.  DESIGN.md's claim to
verify: OWST is what separates DoD-style wiping from ransomware, and PWIO
is what catches slow samples — so dropping them should hurt exactly the
heavy-overwrite FAR and the slow-sample FRR respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.core.config import DetectorConfig
from repro.core.features import FEATURE_NAMES
from repro.core.id3 import DecisionTree
from repro.train.dataset import Dataset, build_dataset
from repro.train.evaluate import evaluate_accuracy
from repro.workloads.catalog import testing_scenarios, training_scenarios


class FeatureSubsetModel:
    """Adapter: a tree trained on a feature subset, fed full vectors."""

    def __init__(self, tree: DecisionTree, keep: Sequence[int]) -> None:
        self.tree = tree
        self.keep = list(keep)

    def predict_one(self, row: Sequence[float]) -> int:
        """Project the full six-feature row onto the subset and classify."""
        return self.tree.predict_one([row[index] for index in self.keep])


@dataclass
class AblationRow:
    """One configuration's operating-point outcome."""

    dropped: str
    worst_far: float
    worst_frr: float
    #: category -> (far, frr) at the operating threshold.
    per_category: Dict[str, tuple]


@dataclass
class FeatureAblationResult:
    """All leave-one-out rows plus the full-feature reference."""

    rows: List[AblationRow]

    def render(self) -> str:
        """Text rendering of the rows/series the paper reports."""
        table_rows = [
            (row.dropped, f"{row.worst_far:.0%}", f"{row.worst_frr:.0%}")
            for row in self.rows
        ]
        return "\n".join(
            [
                "Feature ablation - worst-category FAR/FRR at threshold 3",
                "(drop one feature, retrain, re-evaluate the testing matrix)",
                render_table(("dropped feature", "worst FAR", "worst FRR"),
                             table_rows),
            ]
        )

    def row(self, dropped: str) -> AblationRow:
        """Find a configuration by the feature it dropped."""
        for candidate in self.rows:
            if candidate.dropped == dropped:
                return candidate
        raise KeyError(dropped)


def _subset_dataset(dataset: Dataset, keep: Sequence[int]) -> Dataset:
    subset = Dataset()
    subset.labels = list(dataset.labels)
    subset.rows = [[row[index] for index in keep] for row in dataset.rows]
    return subset


def run(
    seed: int = 0,
    duration: float = 60.0,
    runs_per_scenario: int = 2,
    repetitions: int = 2,
    config: Optional[DetectorConfig] = None,
) -> FeatureAblationResult:
    """Leave-one-feature-out sweep over the testing matrix."""
    config = config or DetectorConfig()
    dataset = build_dataset(
        training_scenarios(), seed=seed, duration=duration,
        runs_per_scenario=runs_per_scenario, config=config,
    )
    configurations = [("(none)", list(range(len(FEATURE_NAMES))))]
    for index, name in enumerate(FEATURE_NAMES):
        keep = [i for i in range(len(FEATURE_NAMES)) if i != index]
        configurations.append((name, keep))
    rows: List[AblationRow] = []
    for dropped, keep in configurations:
        subset = _subset_dataset(dataset, keep)
        tree = DecisionTree(
            max_depth=config.max_tree_depth,
            feature_names=[FEATURE_NAMES[i] for i in keep],
        ).fit(*subset.as_arrays())
        model = FeatureSubsetModel(tree, keep)
        curves = evaluate_accuracy(
            testing_scenarios(), model, thresholds=(config.threshold,),
            repetitions=repetitions, seed=seed + 1, duration=duration,
            config=config,
        )
        per_category = {
            category: (points[0].far, points[0].frr)
            for category, points in curves.items()
        }
        rows.append(
            AblationRow(
                dropped=dropped,
                worst_far=max(far for far, _ in per_category.values()),
                worst_frr=max(frr for _, frr in per_category.values()),
                per_category=per_category,
            )
        )
    return FeatureAblationResult(rows=rows)


if __name__ == "__main__":
    print(run().render())
