"""Regenerate every table, figure, ablation and study in one command.

Run:  python -m repro.experiments.run_all [results_dir]

Writes one text file per experiment under ``results/`` (same outputs the
benchmark suite produces, without pytest).  Takes several minutes.

Per-experiment wall-clock timings are recorded through the observability
layer (:mod:`repro.obs`): a span per experiment, exported as
``_timings.txt`` (metrics text) and ``_run_all_trace.json`` (Chrome
trace, openable in Perfetto) next to the result files.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import (
    ablation_classifier,
    ablation_features,
    ablation_gc,
    ablation_window,
    claims,
    evasion,
    fig1,
    fig2,
    fig4,
    fig7,
    fig8,
    fig9,
    latency_profile,
    table1,
    table2,
    table3,
)

#: (output name, callable) in presentation order.
EXPERIMENTS = (
    ("table1_catalog", lambda: table1.run()),
    ("fig1_overwriting", lambda: fig1.run(seed=1, duration=45.0)),
    ("fig2_features", lambda: fig2.run(seed=1, duration=45.0)),
    ("fig4_score", lambda: fig4.run(seed=2, duration=40.0)),
    ("fig7_accuracy", lambda: fig7.run(repetitions=5, seed=11, duration=60.0)),
    ("table2_consistency", lambda: table2.run(cycles=6, seed=3, num_files=250)),
    ("fig8_latency", lambda: fig8.run(seed=4, duration=40.0)),
    ("fig9_gc_90", lambda: fig9.run(utilization=0.9, seed=5, duration=45.0)),
    ("fig9_gc_70", lambda: fig9.run(utilization=0.7, seed=5, duration=45.0)),
    ("table3_dram", lambda: table3.run(seed=6, duration=30.0)),
    ("claims_headline", lambda: claims.run(seed=7, repetitions=2,
                                           duration=60.0)),
    ("ablation_features", lambda: ablation_features.run(seed=2)),
    ("ablation_classifier", lambda: ablation_classifier.run(seed=2)),
    ("ablation_window", lambda: ablation_window.run(windows=(5, 10),
                                                    seed=2)),
    ("ablation_gc", lambda: ablation_gc.run(seed=2)),
    ("evasion_sweep", lambda: evasion.run(seed=2)),
    ("latency_profile", lambda: latency_profile.run(repetitions=5, seed=11)),
)


def main(results_dir: str = "results") -> int:
    """Regenerate every experiment into ``results_dir``."""
    from repro.obs import Observability

    target = Path(results_dir)
    target.mkdir(exist_ok=True)
    obs = Observability.on()
    timings = obs.metrics.gauge(
        "experiment_wall_seconds",
        "Wall-clock time regenerating one experiment.",
        labelnames=("experiment",),
    )
    for name, runner in EXPERIMENTS:
        print(f"[{name}] running ...", flush=True)
        with obs.tracer.span(name, category="experiment"):
            text = runner().render()
        (target / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        elapsed = obs.tracer.find(name)[-1].wall_duration_s
        timings.set(elapsed, experiment=name)
        print(f"[{name}] done in {elapsed:.1f}s "
              f"-> {target / f'{name}.txt'}")
    (target / "_timings.txt").write_text(
        obs.metrics.render_text() + "\n", encoding="utf-8"
    )
    obs.tracer.write_chrome_trace(str(target / "_run_all_trace.json"))
    print(f"\nall {len(EXPERIMENTS)} experiments regenerated under {target}/ "
          f"(timings in _timings.txt, trace in _run_all_trace.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1] if len(sys.argv) > 1 else "results"))
