"""One fleet device, end to end: build, replay, classify, record.

:func:`run_device` is the unit the orchestrator fans out: it realises a
:class:`~repro.fleet.plan.DeviceSpec` into a seeded scenario trace,
replays it through a full :class:`~repro.ssd.device.SimulatedSSD`
(detector in the data path, lockdown on alarm), classifies the outcome
into one of the fleet verdicts, and returns a plain-dict device record
ready for ``ssd-insider.fleetrec/v1`` encoding.

Every field of the record is derived from *simulated* state — sim-time
latencies, deterministic counters — never from wall clocks, so the same
spec always yields the same record bytes.  Wall time is measured by the
orchestrator around the whole fleet and reported separately (the
devices/sec table in ``docs/fleet.md``), precisely so it can never leak
into the determinism-gated artifacts.

A device that *fails* — unknown scenario name, workload bug, anything —
does not sink the fleet: :func:`run_device` contains the exception and
returns an error record (``verdict: "error"``), which is itself
deterministic and ranked at the top of the triage queue.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.fleet.plan import DeviceSpec, FleetPlan, scenario_category
from repro.fleet.record import FLEETREC_SCHEMA
from repro.nand.geometry import NandGeometry
from repro.obs import EventTracer, MetricsRegistry, Observability
from repro.obs.flightrec import FlightRecorder
from repro.obs.telemetry import WorkerEmitter
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD

#: The fleet's outcome taxonomy, in ascending severity order.
VERDICTS = ("clean", "true_alarm", "false_alarm", "missed", "error")

#: Triage severity per verdict (higher = worse; see docs/fleet.md).
SEVERITY = {
    "clean": 0,
    "true_alarm": 1,
    "false_alarm": 2,
    "missed": 3,
    "error": 4,
}


#: Over-provisioning share of fleet devices.  Generous on purpose: the
#: Table I heavy-overwrite scenarios (iometer, datawiping, install) can
#: rewrite the whole span inside the 10-second retention window, and the
#: recovery queue pins those old versions against GC — a thin-OP device
#: runs out of free blocks mid-scenario.
FLEET_OP_RATIO = 0.25

#: Chunk size for the batched replay loop.  Determinism is unaffected by
#: the choice (``submit_batch`` stops at the read-only transition, so
#: alarm handling lands at the same request boundary regardless); it only
#: trades per-batch bookkeeping against slice-copy size.
FLEET_BATCH = 256


def device_geometry(num_lbas: int) -> NandGeometry:
    """The smallest standard fleet geometry covering ``num_lbas``.

    Deterministic in ``num_lbas`` alone: 2 channels x 2 ways x 64-page
    blocks, with blocks-per-chip sized so the logical capacity (after
    the :data:`FLEET_OP_RATIO` over-provisioning share) covers the
    scenario span with two spare erase blocks of slack for GC.
    """
    channels, ways, pages_per_block = 2, 2, 64
    pages_needed = num_lbas / (1.0 - FLEET_OP_RATIO)
    per_chip_pages = channels * ways * pages_per_block
    blocks = int(pages_needed // per_chip_pages) + 1
    while blocks * per_chip_pages * (1.0 - FLEET_OP_RATIO) < num_lbas:
        blocks += 1
    return NandGeometry(
        channels=channels,
        ways=ways,
        blocks_per_chip=blocks + 2,
        pages_per_block=pages_per_block,
    )


def build_device(
    plan: FleetPlan,
    flight: bool = False,
    emitter: Optional[WorkerEmitter] = None,
) -> SimulatedSSD:
    """Assemble one fleet device (optionally instrumented).

    The un-instrumented default is what plain fleet runs use —
    observability adds wall-clock samples that have no place in a
    determinism-gated record.  ``flight=True`` arms the black box for
    on-demand incident cutting (``fleet triage --cut-incidents``);
    ``emitter`` arms whatever the telemetry plane asked for — a bounded
    drop-oldest :class:`~repro.obs.tracer.EventTracer` ring for the fleet
    timeline and/or a :class:`~repro.obs.metrics.MetricsRegistry` to ship
    live population snapshots from.  Either way PR 4's read-only
    guarantee holds: the armed replay takes identical decisions, so the
    device record bytes never change.
    """
    want_tracer = emitter is not None and emitter.timeline
    want_metrics = emitter is not None and emitter.metrics
    tracer: Optional[EventTracer] = None
    if want_tracer:
        tracer = EventTracer(
            max_events=emitter.timeline_events,  # type: ignore[union-attr]
            drop_oldest=True,
        )
    elif flight:
        # Preserve the pre-telemetry flight bundle (full tracer+metrics,
        # what Observability.on(flight=...) built) so incident bundles
        # keep their contents.
        tracer = EventTracer()
    obs: Optional[Observability] = None
    if flight or want_tracer or want_metrics:
        obs = Observability(
            tracer=tracer,
            metrics=(
                MetricsRegistry() if (want_metrics or flight) else None
            ),
            flightrec=FlightRecorder() if flight else None,
        )
    return SimulatedSSD(
        SSDConfig(
            geometry=device_geometry(plan.num_lbas),
            op_ratio=FLEET_OP_RATIO,
            queue_capacity=plan.queue_capacity,
        ),
        obs=obs,
    )


def classify_verdict(
    has_ransomware: bool, alarm_raised: bool, error: Optional[str]
) -> str:
    """Map one device outcome onto the fleet verdict taxonomy."""
    if error is not None:
        return "error"
    if has_ransomware:
        return "true_alarm" if alarm_raised else "missed"
    return "false_alarm" if alarm_raised else "clean"


def severity_of(record: Dict[str, object]) -> int:
    """Triage severity of a device record (higher = worse)."""
    return SEVERITY.get(str(record.get("verdict")), 0)


def run_device(
    plan: FleetPlan,
    spec: DeviceSpec,
    flight: bool = False,
    emitter: Optional[WorkerEmitter] = None,
) -> Tuple[Dict[str, object], Optional[Dict[str, object]]]:
    """Run one device; returns ``(record, incident_bundle_or_None)``.

    The record is deterministic in ``(plan, spec)``.  An incident bundle
    (``ssd-insider.incident/v1``) is cut only when ``flight=True`` —
    fleet runs keep records compact and re-derive bundles on demand.

    ``emitter`` arms the telemetry plane: phase heartbeats (forced at
    ``build``/``replay``/``tick``/``done`` transitions, interval-gated
    inside the replay loop), live registry snapshots, and the bounded
    event ring shipped at completion.  Telemetry is observational only —
    the record bytes are the same with or without it — and emitter
    failures are contained exactly like device failures.
    """
    try:
        return _run_device_impl(plan, spec, flight, emitter)
    except Exception as exc:  # noqa: BLE001 - containment is the contract
        record = _base_record(plan, spec)
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["verdict"] = classify_verdict(False, False, record["error"])
        if emitter is not None:
            # Best-effort terminal heartbeat so the collector sees the
            # failure immediately, not only when the record lands.
            emitter.heartbeat(
                spec.index, spec.device_id, "done", force=True)
        return record, None


def _base_record(plan: FleetPlan, spec: DeviceSpec) -> Dict[str, object]:
    """The field skeleton every device record shares (docs/fleet.md)."""
    return {
        "schema": FLEETREC_SCHEMA,
        "kind": "device",
        "index": spec.index,
        "device_id": spec.device_id,
        "scenario": spec.scenario,
        "category": scenario_category(spec.scenario),
        "seed": spec.seed,
        "benign": spec.benign,
        "has_ransomware": False,
        "onset": None,
        "duration": plan.duration,
        "num_lbas": plan.num_lbas,
        "requests_total": 0,
        "requests_replayed": 0,
        "blocks_written": 0,
        "blocks_read": 0,
        "alarm_raised": False,
        "alarm_time": None,
        "detection_latency": None,
        "score_peak": 0,
        "slices_closed": 0,
        "dropped_writes": 0,
        "gc_runs": 0,
        "gc_page_copies": 0,
        "queue_peak": 0,
        "error": None,
        "verdict": "clean",
    }


def _run_device_impl(
    plan: FleetPlan,
    spec: DeviceSpec,
    flight: bool,
    emitter: Optional[WorkerEmitter] = None,
) -> Tuple[Dict[str, object], Optional[Dict[str, object]]]:
    record = _base_record(plan, spec)
    if emitter is not None:
        emitter.heartbeat(spec.index, spec.device_id, "build", force=True)
    scenario = plan.mix.resolve(spec.scenario)
    run = scenario.build(
        seed=spec.seed,
        num_lbas=plan.num_lbas,
        duration=plan.duration,
        include_ransomware=not spec.benign,
    )
    device = build_device(plan, flight=flight, emitter=emitter)
    if device.fr is not None:
        device.fr.set_context(
            device_id=spec.device_id,
            scenario=spec.scenario,
            seed=spec.seed,
            attack_onset=run.onset if run.onset is not None else 0.0,
        )
    replayed = 0
    blocks_written = blocks_read = 0
    # Replay through the batched fast lane.  submit_batch stops at the
    # read-only *transition*, so the alarm check below lands on the exact
    # request that raised it — the same boundary the old per-request loop
    # broke on — and the executed prefix is all that counts toward the
    # block tallies.
    trace = run.trace
    total = len(trace)
    submit_batch = device.submit_batch
    if emitter is not None:
        emitter.heartbeat(
            spec.index, spec.device_id, "replay",
            sim_time=device.clock.now, replayed=0, total=total, force=True,
        )
    while replayed < total:
        chunk = trace[replayed:replayed + FLEET_BATCH]
        executed = submit_batch(chunk)
        for request in chunk[:executed]:
            if request.is_write:
                blocks_written += request.length
            else:
                blocks_read += request.length
        replayed += executed
        if emitter is not None and emitter.heartbeat(
            spec.index, spec.device_id, "replay",
            sim_time=device.clock.now, replayed=replayed, total=total,
        ):
            # Piggyback the registry snapshot on the heartbeat's interval
            # gate (refresh first so derived gauges are current).
            if emitter.metrics:
                device.refresh_obs_metrics()
                emitter.emit_metrics(
                    spec.index, spec.device_id, device.obs.metrics)
        if device.alarm_raised:
            # Lockdown: the paper's firmware goes read-only, so the rest
            # of the trace could only be dropped writes.  Stop replaying
            # (the alarm time and latency are already determined).
            break
    # Queue high-water mark: the queue tracks its own peak at every push,
    # and within a request depth only rises (same-timestamp expiry is a
    # no-op after the first block), so the push-time peak equals the old
    # per-request sampled peak bit for bit.
    queue_peak = device.ftl.queue.depth_peak
    if emitter is not None:
        emitter.heartbeat(
            spec.index, spec.device_id, "tick",
            sim_time=device.clock.now, replayed=replayed, total=total,
            force=True,
        )
    device.tick(plan.duration)
    alarm_event = (
        device.detector.alarm_event if device.detector is not None else None
    )
    alarm_time = alarm_event.time if alarm_event is not None else None
    detection_latency = None
    if alarm_time is not None and run.has_ransomware and run.onset is not None:
        detection_latency = max(0.0, alarm_time - run.onset)
    events = device.detector.events if device.detector is not None else []
    record.update(
        has_ransomware=run.has_ransomware,
        onset=run.onset,
        requests_total=len(run.trace),
        requests_replayed=replayed,
        blocks_written=blocks_written,
        blocks_read=blocks_read,
        alarm_raised=alarm_time is not None,
        alarm_time=alarm_time,
        detection_latency=detection_latency,
        score_peak=max((event.score for event in events), default=0),
        slices_closed=len(events),
        dropped_writes=device.stats.dropped_writes,
        gc_runs=device.ftl.stats.gc_runs,
        gc_page_copies=device.ftl.stats.gc_page_copies,
        queue_peak=queue_peak,
    )
    record["verdict"] = classify_verdict(
        run.has_ransomware, record["alarm_raised"], None  # type: ignore[arg-type]
    )
    incident: Optional[Dict[str, object]] = None
    if flight:
        incident = (
            device.incidents[0] if device.incidents
            else device.snapshot_incident("fleet_triage")
        )
    if emitter is not None:
        if emitter.metrics:
            device.refresh_obs_metrics()
            emitter.emit_metrics(
                spec.index, spec.device_id, device.obs.metrics)
        if emitter.timeline:
            emitter.emit_trace(
                spec.index, spec.device_id, device.obs.tracer)
        emitter.heartbeat(
            spec.index, spec.device_id, "done",
            sim_time=device.clock.now, replayed=replayed, total=total,
            force=True,
        )
    return record, incident


# -- worker-pool plumbing (multiprocessing entry points) --------------------

_POOL_PLAN: Optional[FleetPlan] = None
_POOL_EMITTER: Optional[WorkerEmitter] = None


def pool_init(
    plan_payload: Dict[str, object],
    telemetry_payload: Optional[Dict[str, object]] = None,
    telemetry_queue: Optional[object] = None,
) -> None:
    """Pool initializer: rebuild the plan (and emitter) per worker.

    The telemetry queue rides through initargs because a
    ``multiprocessing.Queue`` is only picklable on the child-inheritance
    path — exactly what pool initializer arguments are.  One emitter per
    worker process: its interval gate then paces that worker's whole
    stream of devices, not each device separately.
    """
    global _POOL_PLAN, _POOL_EMITTER
    _POOL_PLAN = FleetPlan.from_dict(plan_payload)
    _POOL_EMITTER = None
    if telemetry_payload is not None and telemetry_queue is not None:
        from repro.fleet.telemetry import TelemetryConfig

        config = TelemetryConfig.from_dict(telemetry_payload)
        _POOL_EMITTER = config.build_emitter(
            telemetry_queue.put_nowait)  # type: ignore[attr-defined]


def pool_run(index: int) -> Dict[str, object]:
    """Pool task: derive and run device ``index`` under the worker plan."""
    assert _POOL_PLAN is not None, "pool_init must run first"
    spec = _POOL_PLAN.device_spec(index)
    record, _ = run_device(_POOL_PLAN, spec, emitter=_POOL_EMITTER)
    return record
