"""Table III DRAM budgeting."""

import pytest

from repro.core.memory import (
    MemoryBudget,
    estimate_memory_budget,
    paper_memory_budget,
)
from repro.errors import ConfigError
from repro.units import MIB


class TestPaperBudget:
    def test_total_matches_paper(self):
        budget = paper_memory_budget()
        assert budget.total_bytes / MIB == pytest.approx(40.03, abs=0.01)

    def test_hash_table_10mb(self):
        assert paper_memory_budget().hash_bytes / MIB == pytest.approx(10.01, abs=0.01)

    def test_queue_30mb(self):
        assert paper_memory_budget().queue_bytes / MIB == pytest.approx(30.0, abs=0.01)

    def test_rows_structure(self):
        rows = paper_memory_budget().rows()
        assert [row[0] for row in rows] == [
            "Hash table", "Counting table", "Recovery queue",
        ]
        assert rows[0][1] == 42 and rows[1][1] == 12 and rows[2][1] == 12


class TestEstimation:
    def test_scales_with_bandwidth(self):
        slow = estimate_memory_budget(100 * MIB, 200 * MIB)
        fast = estimate_memory_budget(700 * MIB, 1200 * MIB)
        assert fast.queue_entries > slow.queue_entries
        assert fast.hash_entries > slow.hash_entries

    def test_window_of_writes_fits_queue(self):
        budget = estimate_memory_budget(700 * MIB, 1200 * MIB, retention=10.0)
        # 700 MiB/s of 4-KiB blocks for 10 s.
        assert budget.queue_entries == 700 * 256 * 10

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            estimate_memory_budget(0, 100)
        with pytest.raises(ConfigError):
            estimate_memory_budget(100, 100, retention=0)
