"""Logical-to-physical page mapping table.

A page-level map from LBA to flat PPA.  This is the structure the recovery
algorithm rolls back: restoring an old version of a block is a single entry
update, never a data copy, which is why recovery completes in well under a
second.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import AddressError


class MappingTable:
    """Sparse LBA -> PPA map over a fixed logical address space."""

    def __init__(self, num_lbas: int) -> None:
        if num_lbas < 1:
            raise AddressError(f"logical space must hold >= 1 block, got {num_lbas}")
        self._num_lbas = num_lbas
        self._map: Dict[int, int] = {}

    @property
    def num_lbas(self) -> int:
        """Size of the logical address space in blocks."""
        return self._num_lbas

    def _check(self, lba: int) -> None:
        if not (0 <= lba < self._num_lbas):
            raise AddressError(f"LBA {lba} out of range [0, {self._num_lbas})")

    def lookup(self, lba: int) -> Optional[int]:
        """PPA currently mapped for ``lba``, or None if unmapped."""
        self._check(lba)
        return self._map.get(lba)

    def is_mapped(self, lba: int) -> bool:
        """True if the LBA currently has a physical page."""
        self._check(lba)
        return lba in self._map

    def update(self, lba: int, ppa: int) -> Optional[int]:
        """Point ``lba`` at ``ppa``; returns the previous PPA (or None)."""
        self._check(lba)
        previous = self._map.get(lba)
        self._map[lba] = ppa
        return previous

    def unmap(self, lba: int) -> Optional[int]:
        """Remove the mapping for ``lba``; returns the removed PPA (or None)."""
        self._check(lba)
        return self._map.pop(lba, None)

    def mapped_count(self) -> int:
        """Number of currently-mapped LBAs."""
        return len(self._map)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(lba, ppa)`` pairs (unspecified order)."""
        return iter(self._map.items())

    def __len__(self) -> int:
        return len(self._map)
