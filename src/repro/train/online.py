"""Online feedback loop: learn from the user's alarm decisions.

The paper's deployment asks the user to confirm every alarm (§III-C).
Each answer is a free label: a dismissal says the window's slices were
benign; an approval says they were malicious.  This module accumulates
that feedback and periodically refits the tree on the original training
matrix *plus* the feedback — the practical mechanism for driving the
paper's residual heavy-overwrite FAR toward zero on a user's actual
workload mix.

The refit is a full ID3 retrain (firmware would ship the new table on the
next maintenance window); feedback rows are replicated ``feedback_weight``
times so a handful of user answers can outweigh thousands of synthetic
slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import DetectorConfig
from repro.core.detector import DetectionEvent, RansomwareDetector
from repro.core.id3 import DecisionTree
from repro.errors import TrainingError
from repro.train.dataset import Dataset


@dataclass
class FeedbackBuffer:
    """Labelled slices harvested from user alarm decisions."""

    rows: List[List[float]] = field(default_factory=list)
    labels: List[int] = field(default_factory=list)
    dismissals: int = 0
    confirmations: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def add_dismissal(self, events: Sequence[DetectionEvent]) -> None:
        """The user said "false alarm": the window's positive slices were
        benign."""
        self.dismissals += 1
        for event in events:
            if event.verdict == 1:
                self.rows.append(event.features.as_list())
                self.labels.append(0)

    def add_confirmation(self, events: Sequence[DetectionEvent]) -> None:
        """The user approved recovery: the window really was an attack."""
        self.confirmations += 1
        for event in events:
            self.rows.append(event.features.as_list())
            self.labels.append(1)


class OnlineTrainer:
    """Wraps a base dataset and refits the tree as feedback arrives.

    Args:
        base_dataset: The Table I training matrix (never discarded —
            feedback refines it, it must not wash it out entirely).
        config: Detector parameters (tree depth).
        feedback_weight: Replication factor for feedback rows.
        refit_after: Refit once this many new feedback rows accumulate.
    """

    def __init__(
        self,
        base_dataset: Dataset,
        config: Optional[DetectorConfig] = None,
        feedback_weight: int = 25,
        refit_after: int = 5,
    ) -> None:
        if len(base_dataset) == 0:
            raise TrainingError("base dataset must not be empty")
        if feedback_weight < 1:
            raise TrainingError("feedback_weight must be >= 1")
        if refit_after < 1:
            raise TrainingError("refit_after must be >= 1")
        self.base_dataset = base_dataset
        self.config = config or DetectorConfig()
        self.feedback_weight = feedback_weight
        self.refit_after = refit_after
        self.buffer = FeedbackBuffer()
        self.refits = 0
        self._pending = 0

    def record_dismissal(self, detector: RansomwareDetector) -> Optional[DecisionTree]:
        """Harvest a dismissed alarm's window; refit when due."""
        events = self._window_events(detector)
        before = len(self.buffer)
        self.buffer.add_dismissal(events)
        self._pending += len(self.buffer) - before
        return self._maybe_refit()

    def record_confirmation(self, detector: RansomwareDetector) -> Optional[DecisionTree]:
        """Harvest a confirmed attack's window; refit when due."""
        events = self._window_events(detector)
        before = len(self.buffer)
        self.buffer.add_confirmation(events)
        self._pending += len(self.buffer) - before
        return self._maybe_refit()

    def refit(self) -> DecisionTree:
        """Retrain now on base data + weighted feedback."""
        rows = list(self.base_dataset.rows)
        labels = list(self.base_dataset.labels)
        for row, label in zip(self.buffer.rows, self.buffer.labels):
            rows.extend([row] * self.feedback_weight)
            labels.extend([label] * self.feedback_weight)
        tree = DecisionTree(max_depth=self.config.max_tree_depth)
        tree.fit(rows, labels)
        self.refits += 1
        self._pending = 0
        return tree

    def _maybe_refit(self) -> Optional[DecisionTree]:
        if self._pending >= self.refit_after:
            return self.refit()
        return None

    def _window_events(self, detector: RansomwareDetector) -> List[DetectionEvent]:
        window = detector.config.window_slices
        return detector.events[-window:]
