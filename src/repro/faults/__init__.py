"""Deterministic NAND fault injection and the sweep that measures recovery.

The paper's headline — instant recovery with **0 % data loss** — is only
credible if it survives the flash misbehaving.  This package provides:

* :class:`~repro.faults.config.FaultConfig` — rates and shapes for every
  injectable fault: read bit errors (in-line-correctable, transient,
  hard), program fails, erase fails, factory-bad blocks, and a scheduled
  whole-device power loss;
* :class:`~repro.faults.injector.FaultInjector` — the seed-driven
  decision source the NAND array consults on every program/read/erase
  (independent RNG streams per fault class, fully deterministic);
* :mod:`repro.faults.sweep` — the experiment harness behind
  ``python -m repro.tools.faultsweep``: it measures lost LBAs vs fault
  rate with a power loss mid-attack and emits
  ``results/FAULTS_sweep.json``.

Injection defaults **off** everywhere: a device built without a
``FaultConfig`` takes the exact same code paths as before this package
existed, and the no-fault equivalence test holds its
:class:`~repro.core.detector.DetectionEvent` stream bit-identical to the
golden scenarios.  The firmware-side handling (ECC read retry, program
remap + block retirement, rebuild after power loss, degraded lockdown)
lives where real firmware puts it: :mod:`repro.nand`, :mod:`repro.ftl`
and :mod:`repro.ssd`.  The reliability model is documented in
``docs/faults.md``.
"""

from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector, FaultStats, ReadFault
from repro.faults.sweep import FaultTrialResult, run_fault_trial, run_sweep

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FaultTrialResult",
    "ReadFault",
    "run_fault_trial",
    "run_sweep",
]
