"""Scenario composition: one ransomware + one background app, merged.

A :class:`Scenario` describes a Table I combination; :meth:`Scenario.build`
instantiates both workloads over disjoint LBA sub-regions, applies the
background's contention slowdown to the ransomware, merges the streams in
time order, and returns a :class:`ScenarioRun` that knows which slices were
ransomware-active (the ground truth used for training and for FAR/FRR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.blockdev.mixer import merge_streams
from repro.blockdev.trace import Trace
from repro.errors import WorkloadError
from repro.rand import derive_seed
from repro.workloads.apps import APP_REGISTRY, NORMAL, AppSpec
from repro.workloads.base import LbaRegion
from repro.workloads.ransomware.profiles import make_ransomware

#: Default logical space a scenario spans, in 4-KB blocks.
DEFAULT_NUM_LBAS = 120_000

#: Default simulated run length in seconds.
DEFAULT_DURATION = 60.0

#: Default ransomware onset, leaving a benign prefix for FAR measurement.
DEFAULT_ONSET = 15.0


@dataclass
class ScenarioRun:
    """A realised scenario: the merged trace plus evaluation ground truth."""

    name: str
    trace: Trace
    duration: float
    ransomware: Optional[str]
    onset: Optional[float]
    category: str
    active_slices: Set[int] = field(default_factory=set)

    def slice_labels(self, slice_duration: float = 1.0) -> List[int]:
        """Per-slice 0/1 ransomware-activity labels for slices 0..duration."""
        num_slices = int(self.duration // slice_duration)
        return [1 if index in self.active_slices else 0 for index in range(num_slices)]

    @property
    def has_ransomware(self) -> bool:
        """True when a ransomware stream is part of the run."""
        return self.ransomware is not None


@dataclass(frozen=True)
class Scenario:
    """One Table I combination, before seeding.

    ``extra_slowdown`` multiplies the contention slowdown applied to the
    sample; the training pipeline uses it to build stress-validation
    variants ("what if an unknown sample ran N x slower?") from training
    samples only.
    """

    name: str
    ransomware: Optional[str] = None
    app: Optional[str] = None
    category: str = NORMAL
    duration: float = DEFAULT_DURATION
    onset: float = DEFAULT_ONSET
    extra_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.ransomware is None and self.app is None:
            raise WorkloadError(f"scenario {self.name!r} has no workload at all")
        if self.app is not None and self.app not in APP_REGISTRY:
            raise WorkloadError(f"scenario {self.name!r}: unknown app {self.app!r}")

    def app_spec(self) -> Optional[AppSpec]:
        """Registry entry for the background app, if any."""
        return APP_REGISTRY[self.app] if self.app is not None else None

    def build(
        self,
        seed: int = 0,
        num_lbas: int = DEFAULT_NUM_LBAS,
        duration: Optional[float] = None,
        include_ransomware: bool = True,
    ) -> ScenarioRun:
        """Realise the scenario into a merged, labelled trace.

        Args:
            seed: Root seed; ransomware and app derive independent streams.
            num_lbas: Logical space to spread the workloads over.
            duration: Override the scenario's default run length.
            include_ransomware: Build the benign-only variant when False
                (used to measure FAR for combinations that include a
                sample).
        """
        run_duration = duration if duration is not None else self.duration
        streams = []
        ransomware_name = None
        onset = None
        spec = self.app_spec()
        app_blocks = int(num_lbas * 0.55)
        if spec is not None:
            app_seed = derive_seed(seed, self.name, "app")
            app = spec.factory(
                LbaRegion(0, max(app_blocks, 2)),
                start=0.0,
                duration=run_duration,
                seed=app_seed,
            )
            streams.append(app.requests())
        if self.ransomware is not None and include_ransomware:
            slowdown = spec.ransomware_slowdown if spec is not None else 1.0
            slowdown *= self.extra_slowdown
            ransom_seed = derive_seed(seed, self.name, "ransomware")
            ransomware_name = self.ransomware
            onset = self._draw_onset(seed, run_duration)
            ransomware = make_ransomware(
                self.ransomware,
                LbaRegion(app_blocks, num_lbas - app_blocks),
                start=onset,
                duration=run_duration - onset,
                seed=ransom_seed,
                time_scale=slowdown,
            )
            streams.append(ransomware.requests())
        trace = Trace(merge_streams(streams))
        return self._finish(trace, run_duration, ransomware_name, onset)

    def _draw_onset(self, seed: int, run_duration: float) -> float:
        """Pick when the sample starts, uniformly over the run's middle.

        Randomising the onset matters for training: with a fixed onset the
        background application would only ever be seen *benign* during its
        warm-up phase, and its steady-state behaviour would exist in the
        dataset exclusively under a "ransomware active" label.
        """
        from repro.rand import derive_rng

        latest = max(self.onset, run_duration - 15.0)
        rng = derive_rng(seed, self.name, "onset")
        onset = float(rng.uniform(self.onset, max(self.onset, latest)))
        return min(onset, max(1.0, run_duration - 10.0))

    def _finish(
        self,
        trace: Trace,
        run_duration: float,
        ransomware_name: Optional[str],
        onset: Optional[float],
    ) -> ScenarioRun:
        # A slice counts as ransomware-active when the sample issued a
        # non-trivial amount of I/O in it.  The floor removes label noise
        # from boundary slices (the sample's first/last instants, or a
        # pause) whose features are indistinguishable from benign traffic.
        per_slice: dict = {}
        if ransomware_name is not None:
            for request in trace:
                if request.source == ransomware_name:
                    index = int(request.time)
                    per_slice[index] = per_slice.get(index, 0) + request.length
        active = {index for index, blocks in per_slice.items() if blocks >= 8}
        return ScenarioRun(
            name=self.name,
            trace=trace,
            duration=run_duration,
            ransomware=ransomware_name,
            onset=onset,
            category=self.category,
            active_slices=active,
        )
