"""Seeded randomness plumbing.

Workload generators derive independent child RNGs from one root seed so that
adding a workload to a scenario never perturbs the streams of the others, and
the same seed always regenerates the same traces.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20180707  # ICDCS 2018 + a stable offset; arbitrary but fixed.


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create a root RNG from an integer seed."""
    return np.random.default_rng(seed)


def derive_seed(seed: int, *labels: str) -> int:
    """Derive a stable child seed from a root seed and a label path.

    The derivation hashes the labels so that e.g. ``("scenario-3", "wannacry")``
    and ``("scenario-3", "dropbox")`` get decorrelated streams regardless of
    the order they are created in.
    """
    hasher = hashlib.sha256(str(seed).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(label.encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(seed: int, *labels: str) -> np.random.Generator:
    """Create a child RNG for ``labels`` under ``seed``."""
    return np.random.default_rng(derive_seed(seed, *labels))
