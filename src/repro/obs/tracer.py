"""The structured event tracer: spans + instants on two clocks at once.

Every event records the host wall clock (``time.perf_counter``, so spans
have real durations you can see in a flame chart) *and* the simulated
clock (so detector slices, GC runs and rollbacks line up with the
workload's own timeline).  The default is the :data:`NULL_TRACER` — a
shared no-op whose methods cost one attribute lookup, so un-instrumented
runs pay nothing.

Export is the Chrome trace-event JSON format: open the file at
``chrome://tracing`` or https://ui.perfetto.dev and the request spans, GC
runs, detector slices and the rollback appear as a zoomable timeline.
Wall time drives the horizontal axis; each event's ``args`` carries its
simulated timestamp (``sim_time_s``).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Deque, Dict, List, Optional, TextIO, Union

from repro.clock import SimClock

#: Default process id stamped on exported Chrome trace events.
TRACE_PID = 1

#: Default thread id (the simulation is single-threaded).
TRACE_TID = 1


@dataclass
class TraceEvent:
    """One recorded event (a completed span, an instant, or a counter).

    Attributes:
        name: Event name (dotted taxonomy, e.g. ``ssd.request``).
        category: Coarse grouping used for filtering (``io``, ``gc``,
            ``detector``, ``recovery``, ``queue``).
        phase: Chrome trace phase: ``"X"`` complete span, ``"i"`` instant,
            ``"C"`` counter sample.
        wall_ts_us: Host time at the event start, µs since the tracer's
            epoch.
        wall_dur_us: Host duration in µs (spans only).
        sim_ts: Simulated time in seconds at the event start, when known.
        sim_dur: Simulated duration in seconds (spans only, when known).
        args: Structured payload (feature values, verdicts, page counts...).
    """

    name: str
    category: str
    phase: str
    wall_ts_us: float
    wall_dur_us: float = 0.0
    sim_ts: Optional[float] = None
    sim_dur: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def wall_duration_s(self) -> float:
        """Host duration in seconds."""
        return self.wall_dur_us / 1e6

    def to_chrome(self) -> Dict[str, object]:
        """Render as one Chrome trace-event object."""
        args = dict(self.args)
        if self.phase != "C":
            # A counter's args are its graphed series; keep sim time out.
            if self.sim_ts is not None:
                args["sim_time_s"] = round(self.sim_ts, 9)
            if self.sim_dur is not None:
                args["sim_dur_s"] = round(self.sim_dur, 9)
        event: Dict[str, object] = {
            "name": self.name,
            "cat": self.category or "repro",
            "ph": self.phase,
            "ts": self.wall_ts_us,
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": args,
        }
        if self.phase == "X":
            event["dur"] = self.wall_dur_us
        if self.phase == "i":
            event["s"] = "t"  # instant scope: thread
        return event


class _NullSpan:
    """The reusable no-op span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        """Discard a span attribute (no-op)."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead default tracer: every method is a no-op.

    Instrumented code can call ``tracer.span(...)`` / ``tracer.instant(...)``
    unconditionally; with the null tracer the call allocates nothing and
    records nothing.  Hot paths that want to skip even argument building
    can branch on :attr:`enabled`.
    """

    enabled = False

    def span(self, name: str, category: str = "", **args: object) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def instant(self, name: str, category: str = "",
                sim_time: Optional[float] = None, **args: object) -> None:
        """Discard an instant event."""

    def counter(self, name: str, value: float, category: str = "",
                sim_time: Optional[float] = None) -> None:
        """Discard a counter sample."""


#: Shared no-op tracer instance (safe to reuse everywhere).
NULL_TRACER = NullTracer()


class _Span:
    """A live span: records wall/sim start on entry, emits on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_args",
                 "_wall_start", "_sim_start")

    def __init__(self, tracer: "EventTracer", name: str, category: str,
                 args: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._wall_start = 0.0
        self._sim_start: Optional[float] = None

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one structured attribute on the span."""
        self._args[key] = value

    def __enter__(self) -> "_Span":
        self._sim_start = self._tracer._sim_now()
        self._wall_start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        wall_end = perf_counter()
        sim_end = self._tracer._sim_now()
        sim_dur = None
        if self._sim_start is not None and sim_end is not None:
            sim_dur = sim_end - self._sim_start
        self._tracer._record(TraceEvent(
            name=self._name,
            category=self._category,
            phase="X",
            wall_ts_us=(self._wall_start - self._tracer.epoch) * 1e6,
            wall_dur_us=(wall_end - self._wall_start) * 1e6,
            sim_ts=self._sim_start,
            sim_dur=sim_dur,
            args=self._args,
        ))
        return False


class EventTracer:
    """A recording tracer: keeps every event in memory for export.

    Args:
        clock: Optional :class:`~repro.clock.SimClock` consulted for the
            simulated timestamp of every event (events may still override
            it via ``sim_time=``).
        max_events: Optional hard cap; once reached, further events are
            dropped (and :attr:`dropped` counts them) instead of growing
            without bound on very long runs.
        drop_oldest: With ``max_events``, switch the cap from
            drop-*newest* (record the run's start, then go deaf) to a
            ring buffer that keeps the most recent ``max_events`` events
            (always-on tracing for long fault sweeps); evictions still
            count into :attr:`dropped`.
    """

    enabled = True

    def __init__(self, clock: Optional[SimClock] = None,
                 max_events: Optional[int] = None,
                 drop_oldest: bool = False) -> None:
        self.clock = clock
        self.max_events = max_events
        self.drop_oldest = drop_oldest
        self.epoch = perf_counter()
        #: Recorded events, oldest first (a deque in ring mode).
        self.events: Union[List[TraceEvent], Deque[TraceEvent]] = (
            deque() if drop_oldest else []
        )
        self.dropped = 0
        # name -> events with that name, maintained by _record so find()
        # is O(matches) instead of a scan over the whole trace.
        self._by_name: Dict[str, Deque[TraceEvent]] = {}

    def bind_clock(self, clock: SimClock) -> None:
        """Attach (or replace) the simulated clock used for timestamps."""
        self.clock = clock

    def _sim_now(self) -> Optional[float]:
        return self.clock.now if self.clock is not None else None

    def _record(self, event: TraceEvent) -> None:
        cap = self.max_events
        if cap is not None and len(self.events) >= cap:
            if not self.drop_oldest or cap == 0:
                self.dropped += 1
                return
            oldest = self.events.popleft()  # type: ignore[union-attr]
            self.dropped += 1
            index = self._by_name[oldest.name]
            index.popleft()
            if not index:
                del self._by_name[oldest.name]
        self.events.append(event)
        self._by_name.setdefault(event.name, deque()).append(event)

    # -- recording interface ----------------------------------------------

    def span(self, name: str, category: str = "", **args: object) -> _Span:
        """Open a span; use as a context manager around the timed work."""
        return _Span(self, name, category, dict(args))

    def instant(self, name: str, category: str = "",
                sim_time: Optional[float] = None, **args: object) -> None:
        """Record a zero-duration event at the current time."""
        self._record(TraceEvent(
            name=name,
            category=category,
            phase="i",
            wall_ts_us=(perf_counter() - self.epoch) * 1e6,
            sim_ts=sim_time if sim_time is not None else self._sim_now(),
            args=dict(args),
        ))

    def counter(self, name: str, value: float, category: str = "",
                sim_time: Optional[float] = None) -> None:
        """Record one sample of a numeric series (graphed by Perfetto)."""
        self._record(TraceEvent(
            name=name,
            category=category,
            phase="C",
            wall_ts_us=(perf_counter() - self.epoch) * 1e6,
            sim_ts=sim_time if sim_time is not None else self._sim_now(),
            args={"value": value},
        ))

    # -- introspection & export -------------------------------------------

    def find(self, name: str) -> List[TraceEvent]:
        """Every recorded event with the given name, in record order.

        Served from the name index maintained by ``_record`` — O(matches),
        not O(trace) — and identical to a full scan (asserted by
        ``tests/test_obs_tracer.py``).
        """
        return list(self._by_name.get(name, ()))

    def to_chrome_trace(self) -> Dict[str, object]:
        """The full trace as a Chrome trace-event JSON document."""
        return {
            "traceEvents": [event.to_chrome() for event in self.events],
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.tracer",
                "events": len(self.events),
                "dropped": self.dropped,
            },
        }

    def write_chrome_trace(self, destination: Union[str, TextIO]) -> None:
        """Write the Chrome trace JSON to a path or open text file."""
        document = self.to_chrome_trace()
        if hasattr(destination, "write"):
            json.dump(document, destination)  # type: ignore[arg-type]
            return
        with open(destination, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
            json.dump(document, handle)
