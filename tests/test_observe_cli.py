"""The observe CLI: replay a catalog scenario under full instrumentation."""

import json

import pytest

from repro.tools import observe


class TestObserveCli:
    def test_list_prints_catalog(self, capsys):
        code = observe.main(["--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "test-ransom-only" in out

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            observe.main(["--scenario", "not-a-scenario"])
        capsys.readouterr()

    def test_replay_exports_trace_and_metrics(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = observe.main(["--scenario", "test-ransom-only",
                             "--duration", "10", "--recover",
                             "--trace-out", str(trace),
                             "--metrics-out", str(metrics),
                             "--no-summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace events recorded:" in out

        document = json.loads(trace.read_text(encoding="utf-8"))
        names = {event["name"] for event in document["traceEvents"]}
        assert {"ssd.request", "detector.slice"} <= names

        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        families = {family["name"] for family in snapshot["families"]}
        assert "ssd_request_latency_seconds" in families

    def test_max_events_cap_reported(self, capsys):
        code = observe.main(["--scenario", "train-kakaotalk",
                             "--duration", "5", "--max-events", "5",
                             "--no-summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dropped" in out
