"""End-to-end observability: an instrumented defense run leaves a trace."""

import json

import pytest

from repro.nand.geometry import NandGeometry
from repro.obs import Observability
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.harness import run_defense
from repro.ssd.smart import smart_report

FEATURE_KEYS = {"owio", "owst", "pwio", "avgwio", "owslope", "io"}


class TestInstrumentedDefense:
    @pytest.fixture(scope="class")
    def outcome(self, pretrained_tree):
        device = SimulatedSSD(
            SSDConfig(
                geometry=NandGeometry(channels=2, ways=4, blocks_per_chip=128,
                                      pages_per_block=64),
                queue_capacity=20_000,
            ),
            tree=pretrained_tree,
            obs=Observability.on(),
        )
        return run_defense(device, sample="wannacry", user_blocks=15_000,
                           seed=3)

    def test_outcome_carries_the_bundle(self, outcome):
        assert outcome.obs is not None
        assert outcome.obs.enabled

    def test_detector_slices_carry_all_six_features(self, outcome):
        slices = outcome.obs.tracer.find("detector.slice")
        assert slices, "no detector slice events recorded"
        for event in slices:
            assert FEATURE_KEYS <= set(event.args)
            assert event.args["verdict"] in (0, 1)  # raw tree output

    def test_rollback_span_after_slices_in_clock_order(self, outcome):
        slices = outcome.obs.tracer.find("detector.slice")
        sim_times = [e.sim_ts for e in slices]
        assert sim_times == sorted(sim_times)
        (rollback,) = outcome.obs.tracer.find("ssd.rollback")
        assert rollback.phase == "X"
        assert rollback.args["entries_applied"] > 0
        # The rollback happens after every detector slice, on both clocks.
        assert rollback.sim_ts >= sim_times[-1]
        last_slice = slices[-1]
        assert rollback.wall_ts_us >= last_slice.wall_ts_us

    def test_alarm_and_lockdown_instants(self, outcome):
        assert outcome.obs.tracer.find("detector.alarm")
        assert outcome.obs.tracer.find("ssd.lockdown")

    def test_per_request_spans_by_mode(self, outcome):
        spans = outcome.obs.tracer.find("ssd.request")
        modes = {event.args["mode"] for event in spans}
        assert "W" in modes

    def test_metrics_cover_the_acceptance_list(self, outcome):
        registry = outcome.obs.metrics
        assert registry.get("recovery_queue_depth") is not None
        wa = registry.get("ftl_write_amplification")
        assert wa is not None and wa.value() >= 1.0
        latency = registry.get("ssd_request_latency_seconds")
        assert latency.count(mode="W") > 0

    def test_chrome_export_is_valid_json(self, outcome, tmp_path):
        out = tmp_path / "defense_trace.json"
        outcome.obs.tracer.write_chrome_trace(str(out))
        document = json.loads(out.read_text(encoding="utf-8"))
        names = {event["name"] for event in document["traceEvents"]}
        assert {"ssd.request", "detector.slice", "ssd.rollback"} <= names

    def test_smart_report_metrics_section(self, outcome, pretrained_tree):
        device = SimulatedSSD(
            SSDConfig(
                geometry=NandGeometry(channels=1, ways=2, blocks_per_chip=64,
                                      pages_per_block=32),
            ),
            tree=pretrained_tree,
            obs=Observability.on(),
        )
        device.write(0, b"x", now=0.1)
        plain = smart_report(device)
        assert all(isinstance(key, int) for key in plain)
        rich = smart_report(device, metrics=True)
        assert "metrics" in rich


class TestGcInstrumentation:
    def test_write_pressure_produces_gc_spans_and_copy_counters(self):
        # Tiny array + repeated overwrites so garbage collection must run.
        device = SimulatedSSD(
            SSDConfig(
                geometry=NandGeometry(channels=1, ways=1, blocks_per_chip=32,
                                      pages_per_block=16),
                detector_enabled=False,
            ),
            obs=Observability.on(),
        )
        lbas = device.num_lbas // 2
        now = 0.0
        for round_index in range(6):
            for lba in range(lbas):
                now += 0.001
                device.write(lba, bytes([round_index]), now=now)
        spans = device.obs.tracer.find("ftl.gc")
        assert spans, "no GC ran despite sustained overwrite pressure"
        assert any(event.args.get("erased", 0) > 0 for event in spans)
        copies = device.obs.metrics.get("ftl_gc_page_copies_total")
        assert copies is not None
        assert copies.value(kind="valid") == device.ftl.stats.gc_page_copies \
            - device.ftl.stats.gc_pinned_copies
        victims = device.obs.tracer.find("ftl.gc_victim")
        assert victims and all("block" in event.args for event in victims)
