"""FAR/FRR evaluation across score thresholds (the paper's Fig. 7).

The window score does not depend on the alarm threshold, so each run is
replayed through the detector exactly once; the outcome at every candidate
threshold is then derived from the recorded per-slice scores:

* **FRR** (false rejection rate): fraction of ransomware runs where the
  score never reached the threshold while the sample was active — a missed
  detection.
* **FAR** (false acceptance rate): fraction of *benign* runs (the same
  background application without the sample) where the score reached the
  threshold anyway — a false alarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import DetectorConfig
from repro.core.detector import RansomwareDetector
from repro.core.id3 import DecisionTree
from repro.rand import derive_seed
from repro.workloads.scenario import Scenario, ScenarioRun


@dataclass
class RunOutcome:
    """Per-slice scores of one replayed run, plus ground truth."""

    scenario: str
    category: str
    has_ransomware: bool
    onset: Optional[float]
    #: (slice_index, score) for every closed slice.
    scores: List
    #: Slices during which the sample was actually issuing I/O (plus the
    #: trailing window where its verdicts still influence the score).
    active_slices: frozenset

    def detected_at(self, threshold: int) -> bool:
        """True when the score reached ``threshold`` during activity."""
        return any(
            score >= threshold and index in self.active_slices
            for index, score in self.scores
        )

    def alarmed_at(self, threshold: int) -> bool:
        """True when the score reached ``threshold`` at any point."""
        return any(score >= threshold for _, score in self.scores)

    def detection_latency(self, threshold: int) -> Optional[float]:
        """Seconds from onset to the first in-activity alarm, or None."""
        if self.onset is None:
            return None
        for index, score in self.scores:
            if score >= threshold and index in self.active_slices:
                return max(0.0, (index + 1) - self.onset)
        return None


@dataclass(frozen=True)
class AccuracyPoint:
    """One Fig. 7 data point: FAR and FRR at one threshold."""

    threshold: int
    far: float
    frr: float
    far_runs: int
    frr_runs: int


def evaluate_run(
    run: ScenarioRun,
    tree: DecisionTree,
    config: Optional[DetectorConfig] = None,
) -> RunOutcome:
    """Replay one run through the detector and record per-slice scores."""
    config = config or DetectorConfig()
    detector = RansomwareDetector(tree=tree, config=config, keep_history=True)
    for request in run.trace:
        detector.observe(request)
    detector.tick(run.duration)
    scores = [(event.slice_index, event.score) for event in detector.events]
    if run.active_slices:
        last_active = max(run.active_slices)
        trailing = set(range(last_active + 1, last_active + config.window_slices + 1))
        active = frozenset(run.active_slices | trailing)
    else:
        active = frozenset()
    return RunOutcome(
        scenario=run.name,
        category=run.category,
        has_ransomware=run.has_ransomware,
        onset=run.onset,
        scores=scores,
        active_slices=active,
    )


def evaluate_accuracy(
    scenarios: Iterable[Scenario],
    tree: DecisionTree,
    thresholds: Sequence[int] = tuple(range(1, 11)),
    repetitions: int = 5,
    seed: int = 0,
    num_lbas: int = 120_000,
    duration: Optional[float] = None,
    config: Optional[DetectorConfig] = None,
) -> Dict[str, List[AccuracyPoint]]:
    """FAR/FRR per background category across thresholds (Fig. 7 panels).

    Each scenario is replayed ``repetitions`` times with the sample (for
    FRR) and, when it has a background app, once more per repetition
    without the sample (for FAR).
    """
    config = config or DetectorConfig()
    outcomes: List[RunOutcome] = []
    for scenario in scenarios:
        for repetition in range(repetitions):
            run_seed = derive_seed(seed, "eval", scenario.name, str(repetition))
            if scenario.ransomware is not None:
                run = scenario.build(
                    seed=run_seed, num_lbas=num_lbas, duration=duration
                )
                outcomes.append(evaluate_run(run, tree, config))
            if scenario.app is not None:
                benign = scenario.build(
                    seed=run_seed,
                    num_lbas=num_lbas,
                    duration=duration,
                    include_ransomware=False,
                )
                outcomes.append(evaluate_run(benign, tree, config))
    return summarize_outcomes(outcomes, thresholds)


def summarize_outcomes(
    outcomes: Sequence[RunOutcome], thresholds: Sequence[int]
) -> Dict[str, List[AccuracyPoint]]:
    """Aggregate run outcomes into per-category FAR/FRR curves."""
    categories = sorted({outcome.category for outcome in outcomes})
    result: Dict[str, List[AccuracyPoint]] = {}
    for category in categories:
        members = [o for o in outcomes if o.category == category]
        ransom_runs = [o for o in members if o.has_ransomware]
        benign_runs = [o for o in members if not o.has_ransomware]
        points = []
        for threshold in thresholds:
            missed = sum(1 for o in ransom_runs if not o.detected_at(threshold))
            false = sum(1 for o in benign_runs if o.alarmed_at(threshold))
            frr = missed / len(ransom_runs) if ransom_runs else 0.0
            far = false / len(benign_runs) if benign_runs else 0.0
            points.append(
                AccuracyPoint(
                    threshold=threshold,
                    far=far,
                    frr=frr,
                    far_runs=len(benign_runs),
                    frr_runs=len(ransom_runs),
                )
            )
        result[category] = points
    return result
