"""Fault-injection configuration.

One frozen dataclass describes everything the injector may do to the
device: how often reads come back with raw bit errors (and how severe
they are), how often programs and erases fail their verify step, how many
blocks ship factory-bad, and whether (and when) the whole device loses
power.  All of it defaults to **off** — a device built without a
:class:`FaultConfig` behaves bit-identically to one that never imported
this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class FaultConfig:
    """Rates and shapes for every injectable fault, all off by default.

    Attributes:
        seed: Root seed for the injector's deterministic decision streams
            (independent of the workload seed, so the same fault pattern
            can be replayed under different traffic).
        read_fault_rate: Probability that one page read returns raw bit
            errors (read disturb / retention loss).  The severity of each
            faulty read is drawn from the three shares below.
        read_transient_share: Share of faulty reads that are *transient*:
            they clear after 1..``transient_max_retries`` ECC read
            retries (read-retry voltage shifts in real firmware).
        read_hard_share: Share of faulty reads that never correct — the
            page is lost once the retry budget runs out.  The remaining
            ``1 - transient - hard`` share is correctable in-line by ECC
            with no retry.
        transient_max_retries: Worst-case retries a transient fault may
            need; a draw above the device's ECC retry budget becomes an
            uncorrectable read even though the fault is "transient".
        program_fail_rate: Probability that one page program fails its
            verify step (the page is burned, the block must be retired).
        erase_fail_rate: Probability that one block erase fails its
            verify step (the block has worn out and must be retired).
        factory_bad_blocks: Blocks marked bad at manufacture time; the
            FTL maps them out before the first write.
        power_loss_at: Simulated time (seconds) at which the whole device
            loses power once; DRAM state vanishes and the firmware
            rebuilds from NAND out-of-band records.  ``None`` disables.
    """

    seed: int = 0
    read_fault_rate: float = 0.0
    read_transient_share: float = 0.30
    read_hard_share: float = 0.0
    transient_max_retries: int = 3
    program_fail_rate: float = 0.0
    erase_fail_rate: float = 0.0
    factory_bad_blocks: int = 0
    power_loss_at: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("read_fault_rate", "program_fail_rate", "erase_fail_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        for name in ("read_transient_share", "read_hard_share"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.read_transient_share + self.read_hard_share > 1.0:
            raise ConfigError(
                "read_transient_share + read_hard_share must not exceed 1"
            )
        if self.transient_max_retries < 1:
            raise ConfigError("transient_max_retries must be >= 1")
        if self.factory_bad_blocks < 0:
            raise ConfigError("factory_bad_blocks must be >= 0")
        if self.power_loss_at is not None and self.power_loss_at < 0:
            raise ConfigError("power_loss_at must be >= 0")

    @property
    def any_media_faults(self) -> bool:
        """True when any per-operation fault can actually fire."""
        return (
            self.read_fault_rate > 0.0
            or self.program_fail_rate > 0.0
            or self.erase_fail_rate > 0.0
            or self.factory_bad_blocks > 0
        )
