"""Transactional metadata journaling."""

import pytest

from repro.errors import FilesystemError
from repro.fs.fsck import fsck
from repro.fs.journal import MetadataJournal
from repro.fs.simplefs import SimpleFS
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD
from repro.units import BLOCK_SIZE


def block(tag: int) -> bytes:
    return bytes([tag]) * BLOCK_SIZE


class InMemoryStore:
    """Backing store stub for unit-testing the journal in isolation."""

    def __init__(self):
        self.blocks = {}

    def read(self, lba: int) -> bytes:
        return self.blocks.get(lba, bytes(BLOCK_SIZE))

    def write(self, lba: int, payload: bytes) -> None:
        self.blocks[lba] = payload


@pytest.fixture
def store() -> InMemoryStore:
    return InMemoryStore()


@pytest.fixture
def journal(store) -> MetadataJournal:
    return MetadataJournal(start=100, blocks=16,
                           read_block=store.read, write_block=store.write)


class TestCommitAndScan:
    def test_commit_then_scan(self, journal):
        seq = journal.commit([(5, block(1)), (7, block(2))])
        transactions = journal.scan()
        assert len(transactions) == 1
        assert transactions[0].seq == seq
        assert dict(transactions[0].updates) == {5: block(1), 7: block(2)}

    def test_sequences_ascend(self, journal):
        first = journal.commit([(5, block(1))])
        second = journal.commit([(5, block(2))])
        assert second == first + 1

    def test_replay_applies_newest_last(self, journal, store):
        journal.commit([(5, block(1))])
        journal.commit([(5, block(2))])
        assert journal.replay() == 2
        assert store.read(5) == block(2)

    def test_wrap_invalidates_overwritten_transactions(self, journal):
        # Fill the 16-block ring with 2-block transactions, then keep going.
        for tag in range(20):
            journal.commit([(5, block(tag % 250))])
        transactions = journal.scan()
        # Stale commit records whose payloads were reused must be rejected
        # (checksums), and replay order must still ascend.
        seqs = [t.seq for t in transactions]
        assert seqs == sorted(seqs)
        assert journal.latest_state()[5] == block(19 % 250)

    def test_uncommitted_payloads_ignored(self, journal, store):
        # A payload written without its commit record (the torn-commit
        # case) must not replay.
        store.write(100, block(9))
        assert journal.scan() == []

    def test_oversized_transaction_rejected(self, journal):
        with pytest.raises(FilesystemError):
            journal.commit([(i, block(1)) for i in range(16)])

    def test_empty_transaction_rejected(self, journal):
        with pytest.raises(FilesystemError):
            journal.commit([])

    def test_partial_payload_rejected(self, journal):
        with pytest.raises(FilesystemError):
            journal.commit([(5, b"short")])


class TestJournaledFilesystem:
    @pytest.fixture
    def device(self) -> SimulatedSSD:
        return SimulatedSSD(SSDConfig.tiny(detector_enabled=False))

    @pytest.fixture
    def jfs(self, device) -> SimpleFS:
        filesystem = SimpleFS(device, num_inodes=16, journal_blocks=16)
        filesystem.format()
        return filesystem

    def test_basic_operations_still_work(self, jfs):
        jfs.create("a", b"hello")
        jfs.overwrite("a", b"world")
        assert jfs.read_file("a") == b"world"
        jfs.delete("a")
        assert jfs.list_files() == []

    def test_remount_replays_cleanly(self, jfs, device):
        jfs.create("a", b"data" * 300)
        remounted = SimpleFS(device, num_inodes=16, journal_blocks=16)
        remounted.mount()
        assert remounted.read_file("a") == b"data" * 300

    def test_fsck_replays_journal(self, jfs, device):
        jfs.create("a", b"x" * 9000)
        report = fsck(device)
        assert report.journal_replayed > 0
        assert report.clean

    def test_torn_inplace_write_repaired_by_replay(self, jfs, device):
        """Simulate the crash the journal exists for: the transaction is
        committed but an in-place metadata write never landed."""
        jfs.create("a", b"A" * 5000)
        jfs.create("b", b"B" * 5000)
        # Clobber the inode table in place (as if the in-place write was
        # cut mid-flight); the journaled copy must restore it.
        device.write(jfs.layout.inode_start, bytes(BLOCK_SIZE))
        report = fsck(device)
        assert report.journal_replayed > 0
        remounted = SimpleFS(device, num_inodes=16, journal_blocks=16)
        remounted.mount()
        assert sorted(remounted.list_files()) == ["a", "b"]
        assert remounted.read_file("a") == b"A" * 5000
