"""Fixed-width table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned text table with a header rule."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for column, value in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(value))
            else:
                widths.append(len(value))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


#: Eight block-height characters for terminal sparklines.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_sparkline(values, width: int = 60) -> str:
    """Render a numeric series as a one-line terminal sparkline.

    Values are bucketed down to ``width`` points (mean per bucket) and
    mapped onto eight block heights; an empty or all-zero series renders
    as a flat baseline.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        bucketed = []
        for index in range(width):
            low = int(index * step)
            high = max(low + 1, int((index + 1) * step))
            chunk = values[low:high]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    top = max(values)
    if top <= 0:
        return _SPARK_CHARS[0] * len(values)
    return "".join(
        _SPARK_CHARS[min(7, int(v / top * 7.999))] for v in values
    )


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
