"""Fig. 1 — ransomware's overwriting behaviour.

(a) The longer a sample is active within a slice, the more overwrites the
slice shows (WannaCry, Mole).  (b) Cumulative overwrite counts: the four
ransomware curves grow much faster than every normal application except
data wiping, with Jaff/CryptoShield near the cloud-storage/P2P range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.correlation import CorrelationResult, feature_activity_correlation
from repro.analysis.cumulative import cumulative_feature_series
from repro.analysis.report import render_table
from repro.rand import derive_seed
from repro.workloads.scenario import Scenario

#: Fig. 1a samples.
CORRELATION_SAMPLES = ("wannacry", "mole")
#: Fig. 1b line sets.
CUMULATIVE_RANSOMWARE = ("wannacry", "jaff", "mole", "cryptoshield")
CUMULATIVE_APPS = ("datawiping", "p2pdown", "cloudstorage", "compression")


@dataclass
class Fig1Result:
    """Correlations (a) and final cumulative overwrite counts (b)."""

    correlations: Dict[str, CorrelationResult]
    cumulative: Dict[str, List[float]]
    duration: float

    def render(self) -> str:
        """Text rendering of the rows/series the paper reports."""
        lines = ["Fig. 1(a) - OWIO vs ransomware active time (per 1 s slice)"]
        rows = [
            (name, f"{result.pearson:+.3f}")
            for name, result in sorted(self.correlations.items())
        ]
        lines.append(render_table(("sample", "pearson r"), rows))
        lines.append("")
        lines.append(f"Fig. 1(b) - cumulative overwrites after {self.duration:.0f} s")
        totals = sorted(
            ((name, series[-1] if series else 0.0) for name, series in self.cumulative.items()),
            key=lambda item: -item[1],
        )
        lines.append(render_table(("workload", "cumulative OWIO"), totals))
        return "\n".join(lines)


def run(seed: int = 0, duration: float = 45.0) -> Fig1Result:
    """Regenerate both Fig. 1 panels."""
    correlations = {}
    for sample in CORRELATION_SAMPLES:
        scenario = Scenario(f"fig1a-{sample}", ransomware=sample, onset=2.0)
        scenario_run = scenario.build(
            seed=derive_seed(seed, "fig1a", sample), duration=duration
        )
        correlations[sample] = feature_activity_correlation(scenario_run, "owio")
    cumulative = {}
    for sample in CUMULATIVE_RANSOMWARE:
        scenario = Scenario(f"{sample}", ransomware=sample, onset=2.0)
        scenario_run = scenario.build(
            seed=derive_seed(seed, "fig1b", sample), duration=duration
        )
        cumulative[sample] = cumulative_feature_series(scenario_run, "owio")
    for app in CUMULATIVE_APPS:
        scenario = Scenario(f"{app}", app=app)
        scenario_run = scenario.build(
            seed=derive_seed(seed, "fig1b", app), duration=duration
        )
        cumulative[app] = cumulative_feature_series(scenario_run, "owio")
    return Fig1Result(
        correlations=correlations, cumulative=cumulative, duration=duration
    )


if __name__ == "__main__":
    print(run().render())
