"""Window-score accumulator (Fig. 4 semantics)."""

import pytest

from repro.core.score import ScoreTracker
from repro.errors import ConfigError


class TestScoreTracker:
    def test_accumulates(self):
        tracker = ScoreTracker(10)
        for expected in (1, 2, 3):
            assert tracker.push(1) == expected

    def test_zero_verdicts_keep_score(self):
        tracker = ScoreTracker(10)
        tracker.push(1)
        assert tracker.push(0) == 1

    def test_window_slide_decays(self):
        tracker = ScoreTracker(3)
        tracker.push(1)
        tracker.push(1)
        tracker.push(1)
        # The oldest 1 falls out as the window slides.
        assert tracker.push(0) == 2
        assert tracker.push(0) == 1
        assert tracker.push(0) == 0

    def test_score_bounded_by_window(self):
        tracker = ScoreTracker(5)
        for _ in range(20):
            tracker.push(1)
        assert tracker.score == 5

    def test_reset(self):
        tracker = ScoreTracker(5)
        tracker.push(1)
        tracker.reset()
        assert tracker.score == 0
        assert len(tracker) == 0

    def test_rejects_bad_verdict(self):
        with pytest.raises(ConfigError):
            ScoreTracker(5).push(2)

    def test_rejects_empty_window(self):
        with pytest.raises(ConfigError):
            ScoreTracker(0)
