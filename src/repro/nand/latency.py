"""NAND operation latencies.

The paper cites Micron MT29F8G08AAAWP figures: page read ~50 us, page program
~500 us (its text says "NAND chip latency (50-1000 us)"), and block erase in
the millisecond range.  These latencies dominate I/O time and are what makes
the insider's ~150-250 ns software overhead negligible (Fig. 8 analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MS, US


@dataclass(frozen=True)
class NandLatencies:
    """Seconds per NAND operation."""

    page_read: float = 50 * US
    page_program: float = 500 * US
    block_erase: float = 3 * MS

    def __post_init__(self) -> None:
        for name in ("page_read", "page_program", "block_erase"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")

    def copy_page(self) -> float:
        """Latency of one GC page copy (read + program)."""
        return self.page_read + self.page_program

    def read_retry(self, attempt: int, backoff: float = 2.0) -> float:
        """Latency of ECC read-retry ``attempt`` (1-based) with ``backoff``.

        Each retry re-senses the page with a slower, more conservative
        mode: retry *i* costs ``page_read * backoff ** (i - 1)``.
        """
        if attempt < 1:
            raise ConfigError(f"retry attempt must be >= 1, got {attempt}")
        return self.page_read * backoff ** (attempt - 1)
