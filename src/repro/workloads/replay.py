"""Replay a recorded trace as a workload.

Lets captured traces (synthetic or imported via
:mod:`repro.blockdev.csvtrace`) participate anywhere a generator can: in
scenario mixes, through the device, or as one stream among many.  Supports
time shifting (schedule the replay at an onset), time scaling (slow a
capture down), and LBA remapping into a region.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.blockdev.request import IORequest
from repro.blockdev.trace import Trace
from repro.errors import WorkloadError
from repro.workloads.base import LbaRegion


class TraceReplay:
    """A workload that re-emits a recorded trace.

    Args:
        trace: The recording.
        name: Source label stamped on replayed requests (None keeps the
            recording's own labels).
        start: Simulated time the replay begins (the recording is shifted
            so its first request lands here).
        time_scale: Stretch factor for inter-request gaps (>1 = slower).
        region: Optional region to remap LBAs into (modulo its length) —
            lets a capture from one disk run against a smaller simulated
            device.
    """

    def __init__(
        self,
        trace: Trace,
        name: Optional[str] = None,
        start: float = 0.0,
        time_scale: float = 1.0,
        region: Optional[LbaRegion] = None,
    ) -> None:
        if time_scale <= 0:
            raise WorkloadError(f"time_scale must be positive, got {time_scale}")
        if start < 0:
            raise WorkloadError(f"start must be >= 0, got {start}")
        self.trace = trace
        self.name = name
        self.start = start
        self.time_scale = time_scale
        self.region = region

    @property
    def duration(self) -> float:
        """Replay length in simulated seconds."""
        return self.trace.duration * self.time_scale

    @property
    def deadline(self) -> float:
        """Time of the replay's last request."""
        return self.start + self.duration

    def requests(self) -> Iterator[IORequest]:
        """Yield the recording, shifted/scaled/remapped."""
        if len(self.trace) == 0:
            return
        origin = self.trace.start_time
        for request in self.trace:
            time = self.start + (request.time - origin) * self.time_scale
            lba = request.lba
            length = request.length
            if self.region is not None:
                lba = self.region.start + (lba % self.region.length)
                length = min(length, self.region.end - lba)
            yield IORequest(
                time=time,
                lba=lba,
                mode=request.mode,
                length=max(1, length),
                source=self.name if self.name is not None else request.source,
            )
