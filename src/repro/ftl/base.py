"""Shared page-mapping FTL machinery.

:class:`PageMappedFTL` implements the write/read/trim paths and greedy GC
once; the conventional and Insider variants differ only in the hooks that
run when a physical page is superseded and in what GC is allowed to reclaim.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Optional

from repro.errors import (
    ConfigError,
    EraseError,
    ExhaustedRetriesError,
    FtlError,
    OutOfSpaceError,
    ProgramFailError,
    UnmappedReadError,
)
from repro.ftl.allocator import BlockAllocator
from repro.ftl.gc import GcPolicy
from repro.ftl.mapping import UNMAPPED, create_mapping_table
from repro.ftl.stats import FtlStats
from repro.ftl.victim_index import VictimIndex
from repro.nand.array import NandArray
from repro.nand.block import PageInfo, PageState
from repro.obs import Observability


class PageMappedFTL:
    """Page-level mapping FTL with greedy garbage collection.

    Args:
        nand: The NAND array to manage.
        op_ratio: Over-provisioning ratio; the logical space exposed to the
            host is ``pages_total * (1 - op_ratio)`` blocks.
        gc_policy: Trigger/target free-block thresholds for GC.
        obs: Observability bundle (GC spans, victim instants, page-copy
            counters); disabled by default.
        mapping_backend: Translation-table backend name (``"flat"`` or
            ``"dict"``; see :mod:`repro.ftl.mapping`).
    """

    def __init__(
        self,
        nand: NandArray,
        op_ratio: float = 0.125,
        gc_policy: Optional[GcPolicy] = None,
        obs: Optional[Observability] = None,
        mapping_backend: str = "flat",
    ) -> None:
        if not (0.0 < op_ratio < 1.0):
            raise ConfigError(f"op_ratio must be in (0, 1), got {op_ratio}")
        self.nand = nand
        self.gc_policy = gc_policy or GcPolicy()
        num_lbas = int(nand.geometry.pages_total * (1.0 - op_ratio))
        if num_lbas < 1:
            raise ConfigError("over-provisioning leaves no logical space")
        # Greedy GC needs working room: one open host block, one open GC
        # block, and at least one spare to relocate into.  Below ~3 blocks
        # of over-provisioning the FTL can wedge with every page valid.
        op_pages = nand.geometry.pages_total - num_lbas
        if op_pages < 3 * nand.geometry.pages_per_block:
            raise ConfigError(
                f"over-provisioning of {op_pages} pages is less than 3 erase "
                f"blocks ({3 * nand.geometry.pages_per_block} pages); greedy "
                f"GC cannot run safely — raise op_ratio or enlarge the array"
            )
        self.mapping = create_mapping_table(
            mapping_backend, num_lbas, num_ppas=nand.geometry.pages_total
        )
        #: Direct (forward, reverse) array references for inline span
        #: translation — flat backend only, None otherwise — and the
        #: logical bound the inline paths check against.
        self._map_refs = (
            self.mapping.span_refs()
            if hasattr(self.mapping, "span_refs") else None
        )
        self._lba_limit = num_lbas
        self.allocator = BlockAllocator(nand)
        #: Incrementally maintained victim index: GC selection and
        #: completion checks read it instead of scanning the array.  The
        #: NAND array reports every page-accounting change back to it —
        #: through the deferred ``note`` hook, so the write hot path pays
        #: a set-add per event and the bucket re-file happens once per
        #: dirty block at the next GC selection.
        self.victim_index = VictimIndex(nand)
        nand.block_listener = self.victim_index.note
        self.stats = FtlStats()
        self.obs = obs if obs is not None else Observability.off()
        #: Cached profiler handle (None disarmed); the read/write/trim
        #: wrappers and GC test this once per operation.
        self._prof = self.obs.profiler
        self._m_gc_copies = None
        self._m_erases = None
        if self.obs.armed_metrics:
            metrics = self.obs.metrics
            self._m_gc_copies = metrics.counter(
                "ftl_gc_page_copies_total",
                "Pages relocated by garbage collection, by kind "
                "(valid = live data, pinned = recovery-queue old versions).",
                labelnames=("kind",),
            )
            self._m_erases = metrics.counter(
                "ftl_erases_total", "Block erases completed."
            )
        self._last_timestamp = 0.0
        #: True while write_span() is iterating: supersede hooks switch
        #: from opening a per-block profiler section to accumulating a
        #: raw clock pair into the span counters below, folded into the
        #: tree once per request via LayerProfiler.add().
        self._in_span = False
        self._span_queue_ns = 0
        self._span_queue_calls = 0
        #: Optional static wear leveler (attach_wear_leveling()); checked
        #: after each GC round.
        self.wear_leveler = None
        #: Blocks currently mid-retirement (re-entrancy guard: a program
        #: failure during retirement relocation retires the *new* block,
        #: never loops back into one already being drained).
        self._retiring = set()
        # Factory bad blocks (stamped before the FTL boots) are mapped
        # out of the free pool before the first write, like real
        # firmware's bad-block table scan.
        for global_block in range(nand.num_blocks):
            if nand.block(global_block).is_bad:
                self.allocator.retire(global_block)
                self.victim_index.remove(global_block)

    # -- host interface --------------------------------------------------

    @property
    def num_lbas(self) -> int:
        """Logical capacity in 4-KB blocks."""
        return self.mapping.num_lbas

    def read(self, lba: int, timestamp: float = 0.0) -> PageInfo:
        """Read the live version of ``lba``."""
        prof = self._prof
        if prof is None:
            return self._read_impl(lba, timestamp)
        with prof.section("ftl.read"):
            return self._read_impl(lba, timestamp)

    def _read_impl(self, lba: int, timestamp: float) -> PageInfo:
        # Reads advance the FTL's notion of "now" just like writes do:
        # cost-benefit victim selection ages blocks against the newest host
        # I/O, and a read-heavy phase must not freeze that clock.
        self._last_timestamp = max(self._last_timestamp, timestamp)
        prof = self._prof
        if prof is None:
            ppa = self.mapping.lookup(lba)
        else:
            # Clock-pair accumulation instead of a nested section: the
            # lookup is a single array index, so the section enter/exit
            # machinery would dominate the recorded time.  Flat backend:
            # index the forward array directly (bounds-checked inline,
            # out-of-range falls through to the raising lookup).
            refs = self._map_refs
            t0 = perf_counter_ns()
            if refs is not None and 0 <= lba < self._lba_limit:
                ppa = refs[0][lba]
                if ppa < 0:
                    ppa = None
            else:
                ppa = self.mapping.lookup(lba)
            prof.add("ftl.translate", perf_counter_ns() - t0)
        if ppa is None:
            raise UnmappedReadError(f"LBA {lba} has never been written")
        self.stats.host_reads += 1
        return self.nand.read(ppa)

    def write(self, lba: int, timestamp: float = 0.0, payload: Optional[bytes] = None) -> int:
        """Write ``lba``; returns the new physical page address.

        A program-verify failure is survived transparently: the write is
        remapped to a fresh block and the failing block is drained and
        retired (see :meth:`_retire_block`); only
        :class:`~repro.errors.ExhaustedRetriesError` — every replacement
        block failing too — surfaces to the caller.
        """
        prof = self._prof
        if prof is None:
            return self._write_impl(lba, timestamp, payload)
        with prof.section("ftl.write"):
            return self._write_impl(lba, timestamp, payload)

    def _write_impl(self, lba: int, timestamp: float,
                    payload: Optional[bytes]) -> int:
        self._last_timestamp = max(self._last_timestamp, timestamp)
        self._ensure_space()
        new_ppa = self._host_program(lba, timestamp, payload)
        prof = self._prof
        if prof is None:
            old_ppa = self.mapping.update(lba, new_ppa)
        else:
            with prof.section("ftl.translate"):
                old_ppa = self.mapping.update(lba, new_ppa)
        self.stats.host_writes += 1
        self._on_superseded(lba, old_ppa, new_ppa, timestamp)
        return new_ppa

    def write_span(self, lba: int, length: int, timestamp: float) -> None:
        """Write ``length`` consecutive LBAs with request-batched profiling.

        The per-block operation order is exactly ``length`` calls of
        :meth:`_write_impl` — same timestamp advance, space check,
        program, mapping update and supersede hook, in the same order —
        so GC timing, placement, stats and detection events are
        bit-identical to the per-block loop.  What changes is profiler
        *attribution granularity*: one ``ftl.write`` section brackets the
        whole request, and the per-block ``ftl.translate`` /
        ``queue.update`` spans are measured with raw clock pairs and
        folded into the tree once at the end (LayerProfiler.add), so the
        recorded shares reflect the work instead of 2×``length`` section
        enter/exits per request.
        """
        prof = self._prof
        if prof is None:
            for offset in range(length):
                self._write_impl(lba + offset, timestamp, None)
            return
        with prof.section("ftl.write"):
            mapping = self.mapping
            in_bounds = 0 <= lba and lba + length <= mapping.num_lbas
            refs = self._map_refs if in_bounds else None
            if in_bounds:
                # Whole span validated up front: the per-block updates can
                # skip their range checks.
                mapping_update = mapping.update_unchecked
            else:
                # Out-of-range span: the checked update raises
                # AddressError at exactly the block the per-block loop
                # would have.
                mapping_update = mapping.update
            stats = self.stats
            clock = perf_counter_ns
            translate_ns = 0
            mapped_delta = 0
            self._span_queue_ns = 0
            self._span_queue_calls = 0
            self._in_span = True
            try:
                if refs is not None:
                    # Flat backend: perform update_unchecked's array
                    # transitions inline (no method call per block),
                    # folding the mapped-count delta back after the loop.
                    forward, reverse = refs
                    for offset in range(length):
                        current = lba + offset
                        self._last_timestamp = max(
                            self._last_timestamp, timestamp
                        )
                        self._ensure_space()
                        new_ppa = self._host_program(
                            current, timestamp, None
                        )
                        t0 = clock()
                        previous = forward[current]
                        forward[current] = new_ppa
                        if previous >= 0:
                            reverse[previous] = UNMAPPED
                            old_ppa = previous
                        else:
                            old_ppa = None
                            mapped_delta += 1
                        reverse[new_ppa] = current
                        translate_ns += clock() - t0
                        stats.host_writes += 1
                        self._on_superseded(
                            current, old_ppa, new_ppa, timestamp
                        )
                else:
                    for offset in range(length):
                        current = lba + offset
                        self._last_timestamp = max(
                            self._last_timestamp, timestamp
                        )
                        self._ensure_space()
                        new_ppa = self._host_program(
                            current, timestamp, None
                        )
                        t0 = clock()
                        old_ppa = mapping_update(current, new_ppa)
                        translate_ns += clock() - t0
                        stats.host_writes += 1
                        self._on_superseded(
                            current, old_ppa, new_ppa, timestamp
                        )
            finally:
                self._in_span = False
                if mapped_delta:
                    mapping.add_mapped(mapped_delta)
            prof.add("ftl.translate", translate_ns, length)
            if self._span_queue_calls:
                prof.add("queue.update", self._span_queue_ns,
                         self._span_queue_calls)

    def trim(self, lba: int, timestamp: float = 0.0) -> None:
        """Discard the live version of ``lba`` (e.g. on file deletion)."""
        prof = self._prof
        if prof is None:
            self._trim_impl(lba, timestamp)
            return
        with prof.section("ftl.trim"):
            self._trim_impl(lba, timestamp)

    def _trim_impl(self, lba: int, timestamp: float) -> None:
        self._last_timestamp = max(self._last_timestamp, timestamp)
        old_ppa = self.mapping.unmap(lba)
        self.stats.host_trims += 1
        if old_ppa is not None:
            self._on_trimmed(lba, old_ppa, timestamp)

    # -- programming with remap -------------------------------------------

    #: Distinct blocks one logical program may try before the FTL declares
    #: the media failed (the graceful-degradation boundary).
    MAX_PROGRAM_ATTEMPTS = 4

    def _host_program(self, lba: int, timestamp: float,
                      payload: Optional[bytes]) -> int:
        """Program a host write, remapping around verify failures."""
        last: Optional[ProgramFailError] = None
        for _ in range(self.MAX_PROGRAM_ATTEMPTS):
            try:
                block = self.allocator.host_block()
            except OutOfSpaceError:
                # The free pool ran dry between GC passes (GC may have had
                # to skip victims it could not finish); collect once more
                # now that recent overwrites have created fully-invalid
                # blocks.
                self.collect_garbage()
                block = self.allocator.host_block()
            try:
                return self.nand.program(block, lba, timestamp, payload)
            except ProgramFailError as exc:
                last = exc
                self.stats.program_fails += 1
                self._retire_block(block)
        raise ExhaustedRetriesError(
            f"write of LBA {lba} failed program verify in "
            f"{self.MAX_PROGRAM_ATTEMPTS} consecutive blocks"
        ) from last

    def _gc_program(self, lba: Optional[int], written_at: float,
                    payload: Optional[bytes]) -> int:
        """Program a relocation copy, remapping around verify failures."""
        last: Optional[ProgramFailError] = None
        for _ in range(self.MAX_PROGRAM_ATTEMPTS):
            block = self.allocator.gc_block()
            try:
                return self.nand.program(block, lba, written_at, payload)
            except ProgramFailError as exc:
                last = exc
                self.stats.program_fails += 1
                self._retire_block(block)
        raise ExhaustedRetriesError(
            f"relocation of LBA {lba} failed program verify in "
            f"{self.MAX_PROGRAM_ATTEMPTS} consecutive blocks"
        ) from last

    def _retire_block(self, global_block: int) -> None:
        """Drain and permanently retire a block after a program failure.

        Everything that must survive — valid pages and recovery-queue
        pinned old versions — is relocated first, so retirement is
        loss-free for both live data and rollback coverage.  The
        ``_retiring`` guard keeps a failure during the relocation itself
        (which retires the *target* block) from re-entering this block.
        """
        if (global_block in self._retiring
                or self.allocator.is_retired(global_block)):
            return
        self._retiring.add(global_block)
        try:
            # Pull the block from circulation first so the relocation
            # below can never be handed the dying block as a target.
            self.allocator.retire(global_block)
            self.victim_index.remove(global_block)
            geometry = self.nand.geometry
            block = self.nand.block(global_block)
            moved = 0
            for ppa in self.nand.block_ppa_range(global_block):
                page = block.pages[ppa % geometry.pages_per_block]
                if page.state is PageState.VALID:
                    self._copy_valid_page(ppa, page)
                    moved += 1
                elif page.state is PageState.INVALID and self._is_pinned(ppa):
                    self._copy_pinned_page(ppa, page)
                    moved += 1
            self.stats.retirement_copies += moved
            block.mark_bad()
            self.stats.bad_blocks += 1
            if self.obs.armed_tracer and self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "ftl.block_retired", category="reliability",
                    sim_time=self._last_timestamp, block=global_block,
                    pages_moved=moved,
                )
            fr = self.obs.flightrec
            if fr is not None:
                fr.record_event(
                    "block_retired", self._last_timestamp,
                    block=global_block, pages_moved=moved,
                )
        finally:
            self._retiring.discard(global_block)

    # -- subclass hooks -------------------------------------------------

    def _on_superseded(
        self, lba: int, old_ppa: Optional[int], new_ppa: int, timestamp: float
    ) -> None:
        """Called after a write remaps ``lba``; default: drop the old page."""
        if old_ppa is not None:
            self.nand.invalidate(old_ppa)

    def _on_trimmed(self, lba: int, old_ppa: int, timestamp: float) -> None:
        """Called after a trim unmaps ``lba``; default: drop the old page."""
        self.nand.invalidate(old_ppa)

    def _is_pinned(self, ppa: int) -> bool:
        """True when GC must preserve an invalid page at ``ppa``."""
        return False

    def _on_pinned_moved(self, old_ppa: int, new_ppa: int) -> None:
        """Called when GC relocates a pinned old-version page."""

    # -- garbage collection ----------------------------------------------

    def _ensure_space(self) -> None:
        if self.allocator.free_blocks <= self.gc_policy.trigger_free_blocks:
            self.collect_garbage()

    def collect_garbage(self) -> int:
        """Run GC until the free pool exceeds the target; returns erases done."""
        if not (self.obs.armed_tracer or self.obs.flightrec is not None):
            return self._collect_garbage()
        before_copies = self.stats.gc_page_copies
        before_pinned = self.stats.gc_pinned_copies
        with self.obs.tracer.span("ftl.gc", category="gc") as span:
            erased = self._collect_garbage()
            span.set("erased", erased)
            span.set("page_copies",
                     self.stats.gc_page_copies - before_copies)
            span.set("pinned_copies",
                     self.stats.gc_pinned_copies - before_pinned)
        fr = self.obs.flightrec
        if fr is not None and erased:
            fr.record_event(
                "gc", self._last_timestamp, erased=erased,
                page_copies=self.stats.gc_page_copies - before_copies,
                pinned_copies=self.stats.gc_pinned_copies - before_pinned,
            )
        return erased

    def _collect_garbage(self) -> int:
        prof = self._prof
        if prof is None:
            return self._collect_garbage_impl()
        with prof.section("ftl.gc"):
            return self._collect_garbage_impl()

    def _collect_garbage_impl(self) -> int:
        erased = 0
        tracer = self.obs.tracer
        prof = self._prof
        while self.allocator.free_blocks <= self.gc_policy.target_free_blocks:
            if prof is None:
                victim = self.victim_index.select(
                    self._gc_candidate,
                    policy=self.gc_policy.victim_policy,
                    now=self._last_timestamp,
                )
            else:
                with prof.section("ftl.gc.select_victim"):
                    victim = self.victim_index.select(
                        self._gc_candidate,
                        policy=self.gc_policy.victim_policy,
                        now=self._last_timestamp,
                    )
            if victim is not None and tracer.enabled:
                block = self.nand.block(victim)
                tracer.instant(
                    "ftl.gc_victim", category="gc",
                    sim_time=self._last_timestamp, block=victim,
                    valid=block.valid_count, invalid=block.invalid_count,
                )
            if victim is None or not self._can_complete(victim):
                # Either nothing is reclaimable yet, or relocating the best
                # victim would exhaust the pool mid-copy.  Give the host a
                # chance to invalidate more pages; GC runs again before the
                # next allocation.
                break
            self._relocate_and_erase(victim)
            erased += 1
        if erased and self.wear_leveler is not None:
            self.wear_leveler.maybe_level()
        return erased

    def attach_wear_leveling(self, config=None):
        """Enable static wear leveling; returns the leveler for inspection."""
        from repro.ftl.wearlevel import StaticWearLeveler

        self.wear_leveler = StaticWearLeveler(self, config)
        return self.wear_leveler

    def _can_complete(self, victim: int) -> bool:
        """True when relocating ``victim`` cannot strand the allocator.

        Every page that must survive (valid + pinned) needs a slot in the
        GC active block or in a free block *before* the victim's erase
        returns space to the pool.  The pinned count comes straight from
        the victim index, so the check is O(1) — no page walk.
        """
        geometry = self.nand.geometry
        block = self.nand.block(victim)
        needed = block.valid_count + self.victim_index.pinned_in(victim)
        if needed == 0:
            return True
        gc_active = self.allocator.gc_active
        gc_slots = 0
        if gc_active is not None:
            gc_slots = self.nand.block(gc_active).free_pages
        room = gc_slots + self.allocator.free_blocks * geometry.pages_per_block
        return room >= needed

    def _gc_candidate(self, global_block: int) -> bool:
        return not (
            self.allocator.is_free(global_block)
            or self.allocator.is_active(global_block)
            or self.allocator.is_retired(global_block)
        )

    def _relocate_and_erase(self, victim: int) -> None:
        self.stats.gc_runs += 1
        # The bulk path reorders NAND sub-operations (all programs for a
        # chunk, then all invalidations) without changing any end state —
        # but a fault injector draws RNG *per program in call order*, so
        # fault-armed devices keep the original per-page sequence to stay
        # bit-identical with the fault-injection oracle tests.
        if self.nand.faults is None:
            self._relocate_bulk(victim)
        else:
            self._relocate_per_page(victim)
        self._erase_victim(victim)

    def _relocate_per_page(self, victim: int) -> None:
        """Original one-page-at-a-time relocation (fault-armed devices)."""
        geometry = self.nand.geometry
        victim_block = self.nand.block(victim)
        for ppa in self.nand.block_ppa_range(victim):
            page_index = ppa % geometry.pages_per_block
            page = victim_block.pages[page_index]
            if page.state is PageState.VALID:
                self._copy_valid_page(ppa, page)
            elif page.state is PageState.INVALID and self._is_pinned(ppa):
                self._copy_pinned_page(ppa, page)

    def _relocate_bulk(self, victim: int) -> None:
        """Relocate every surviving page of ``victim`` in bulk NAND calls.

        One :meth:`~repro.nand.array.NandArray.program_many` call per
        target block (instead of a Python round-trip per page) and one
        batched invalidation at the end, with the block listener fired
        once per touched block.  Page placement is identical to the
        per-page path: survivors stream into the GC active block in PPA
        order, rolling into fresh blocks exactly where
        :meth:`~repro.ftl.allocator.BlockAllocator.gc_block` would have
        opened them.
        """
        victim_block = self.nand.block(victim)
        base = victim * self.nand.geometry.pages_per_block
        pages = victim_block.pages
        survivors = []
        for page_index in range(victim_block.write_pointer):
            page = pages[page_index]
            state = page.state
            if state is PageState.VALID:
                survivors.append((base + page_index, page, False))
            elif state is PageState.INVALID and self._is_pinned(
                base + page_index
            ):
                survivors.append((base + page_index, page, True))
        if not survivors:
            return
        mapping = self.mapping
        invalidations = []
        pinned_moves = 0
        index = 0
        while index < len(survivors):
            target = self.allocator.gc_block()
            room = self.nand.block(target).free_pages
            chunk = survivors[index:index + room]
            new_ppas = self.nand.program_many(
                target,
                [(page.lba, page.written_at, page.payload)
                 for _ppa, page, _pinned in chunk],
            )
            for (old_ppa, page, pinned), new_ppa in zip(chunk, new_ppas):
                if pinned:
                    # The relocated copy is still an *old version*: it is
                    # immediately invalid, kept alive only by its pin.
                    invalidations.append(new_ppa)
                    self._on_pinned_moved(old_ppa, new_ppa)
                    pinned_moves += 1
                else:
                    lba = page.lba
                    if lba is None or mapping.lookup(lba) != old_ppa:
                        raise FtlError(
                            f"mapping invariant broken: valid page "
                            f"{old_ppa} not the live copy of its LBA"
                        )
                    mapping.update(lba, new_ppa)
                    invalidations.append(old_ppa)
            index += len(chunk)
        self.nand.invalidate_many(invalidations)
        moved = len(survivors)
        self.stats.gc_page_copies += moved
        self.stats.gc_pinned_copies += pinned_moves
        if self._m_gc_copies is not None:
            if moved > pinned_moves:
                self._m_gc_copies.inc(moved - pinned_moves, kind="valid")
            if pinned_moves:
                self._m_gc_copies.inc(pinned_moves, kind="pinned")

    def _erase_victim(self, victim: int) -> None:
        """Erase a fully-relocated victim, surviving natural wear-out."""
        try:
            self.nand.erase(victim)
        except EraseError:
            # Wear-out: every surviving page was already relocated above,
            # so nothing is lost — retire the block and move on with one
            # less block of capacity (the grown-bad-block path of real
            # firmware).
            self.allocator.retire(victim)
            self.victim_index.remove(victim)
            self.stats.bad_blocks += 1
            return
        self.stats.erases += 1
        if self._m_erases is not None:
            self._m_erases.inc()
        self.allocator.release(victim)

    def _copy_valid_page(self, ppa: int, page: PageInfo) -> None:
        lba = page.lba
        if lba is None or self.mapping.lookup(lba) != ppa:
            raise FtlError(
                f"mapping invariant broken: valid page {ppa} not the live copy of its LBA"
            )
        new_ppa = self._gc_program(lba, page.written_at, page.payload)
        self.mapping.update(lba, new_ppa)
        self.nand.invalidate(ppa)
        self.stats.gc_page_copies += 1
        if self._m_gc_copies is not None:
            self._m_gc_copies.inc(kind="valid")

    def _copy_pinned_page(self, ppa: int, page: PageInfo) -> None:
        new_ppa = self._gc_program(page.lba, page.written_at, page.payload)
        # The relocated copy is still an *old version*, so it is immediately
        # invalid; only the recovery queue keeps it alive.
        self.nand.invalidate(new_ppa)
        self._on_pinned_moved(ppa, new_ppa)
        self.stats.gc_page_copies += 1
        self.stats.gc_pinned_copies += 1
        if self._m_gc_copies is not None:
            self._m_gc_copies.inc(kind="pinned")

    # -- power-loss recovery ------------------------------------------------

    @classmethod
    def rebuild(cls, nand: NandArray, op_ratio: float = 0.125,
                gc_policy: Optional[GcPolicy] = None, **kwargs):
        """Reconstruct FTL state from the NAND array after a power loss.

        Real FTLs persist nothing they cannot rebuild: the logical-to-
        physical map is recovered by scanning every programmed page's
        out-of-band (LBA, timestamp) record — the newest version of each
        LBA wins, all others are re-marked invalid.  The allocator's free
        pool is whatever blocks hold no programmed pages.
        """
        ftl = cls(nand, op_ratio=op_ratio, gc_policy=gc_policy, **kwargs)
        newest = {}  # lba -> (written_at, ppa)
        geometry = nand.geometry
        for global_block in range(nand.num_blocks):
            block = nand.block(global_block)
            if block.write_pointer > 0:
                ftl.allocator.mark_used(global_block)
            if block.is_bad:
                ftl.allocator.retire(global_block)
                continue
            for page_index in range(block.write_pointer):
                page = block.pages[page_index]
                ppa = global_block * geometry.pages_per_block + page_index
                # Derive state purely from OOB: flags are not trusted
                # (a real chip has no "invalid" bit to read back).
                page.state = PageState.INVALID
                if page.lba is None or page.lba >= ftl.num_lbas:
                    continue
                current = newest.get(page.lba)
                if current is None or page.written_at >= current[0]:
                    newest[page.lba] = (page.written_at, ppa)
            block.valid_count = 0
        for lba, (written_at, ppa) in newest.items():
            ftl.mapping.update(lba, ppa)
            global_block = geometry.block_of(ppa)
            block = nand.block(global_block)
            block.pages[ppa % geometry.pages_per_block].state = PageState.VALID
            block.valid_count += 1
            ftl._last_timestamp = max(ftl._last_timestamp, written_at)
        # The scan above rewrote page states wholesale, bypassing the
        # per-operation listener; recompute the victim index once.
        ftl.victim_index.rebuild()
        return ftl

    # -- introspection ----------------------------------------------------

    def utilization(self) -> float:
        """Fraction of logical space currently mapped."""
        return self.mapping.mapped_count() / self.mapping.num_lbas

    def _pinned_ppas(self):
        """The authoritative pin set for index audits (none by default)."""
        return ()

    def audit_victim_index(self) -> None:
        """Recount the victim index from ground truth; raise on drift.

        Tests call this after stressful transitions (retirement,
        power-loss rebuild, rollback, fault sweeps) the same way
        :meth:`~repro.ftl.recovery_queue.RecoveryQueue.audit` is used.
        """
        self.victim_index.audit(
            pinned_ppas=self._pinned_ppas(),
            is_retired=self.allocator.is_retired,
        )
