"""Read-disturb counters and the scrubber."""

import pytest

from repro.errors import ConfigError
from repro.ftl.conventional import ConventionalFTL
from repro.ftl.insider import InsiderFTL
from repro.ftl.scrub import ReadScrubber, ScrubConfig
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry


def make_ftl(insider=False):
    nand = NandArray(NandGeometry(channels=1, ways=1, blocks_per_chip=12,
                                  pages_per_block=8))
    cls = InsiderFTL if insider else ConventionalFTL
    return cls(nand, op_ratio=0.45)


class TestReadCounters:
    def test_reads_accumulate(self, tiny_nand):
        ppa = tiny_nand.program(0, lba=1, timestamp=0.0)
        for _ in range(5):
            tiny_nand.read(ppa)
        assert tiny_nand.block(0).reads_since_erase == 5

    def test_erase_resets_counter(self, tiny_nand):
        ppa = tiny_nand.program(0, lba=1, timestamp=0.0)
        tiny_nand.read(ppa)
        tiny_nand.invalidate(ppa)
        tiny_nand.erase(0)
        assert tiny_nand.block(0).reads_since_erase == 0


class TestScrubber:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ScrubConfig(read_limit=0)
        with pytest.raises(ConfigError):
            ScrubConfig(max_per_sweep=0)

    def test_hot_read_block_becomes_due(self):
        ftl = make_ftl()
        for lba in range(ftl.num_lbas):
            ftl.write(lba, 0.0, b"x")
        scrubber = ReadScrubber(ftl, ScrubConfig(read_limit=50))
        for _ in range(60):
            ftl.read(0)
        assert scrubber.due_blocks()

    def test_sweep_relocates_and_resets(self):
        ftl = make_ftl()
        for lba in range(ftl.num_lbas):
            ftl.write(lba, 0.0, b"lba%d" % lba)
        scrubber = ReadScrubber(ftl, ScrubConfig(read_limit=50))
        hot_lba = 0
        for _ in range(60):
            ftl.read(hot_lba)
        due_before = scrubber.due_blocks()
        assert due_before
        moved = scrubber.sweep()
        assert moved >= 1
        assert scrubber.scrubbed == moved
        # The data survived the relocation.
        for lba in range(ftl.num_lbas):
            assert ftl.read(lba).payload == b"lba%d" % lba

    def test_sweep_bounded_per_call(self):
        ftl = make_ftl()
        for lba in range(ftl.num_lbas):
            ftl.write(lba, 0.0, b"y")
        scrubber = ReadScrubber(ftl, ScrubConfig(read_limit=10,
                                                 max_per_sweep=1))
        for lba in range(ftl.num_lbas):
            for _ in range(12):
                ftl.read(lba)
        assert scrubber.sweep() <= 1

    def test_nothing_due_nothing_moved(self):
        ftl = make_ftl()
        ftl.write(0, 0.0, b"z")
        scrubber = ReadScrubber(ftl)
        assert scrubber.sweep() == 0

    def test_insider_pins_survive_scrub(self):
        ftl = make_ftl(insider=True)
        for lba in range(ftl.num_lbas):
            ftl.write(lba, 0.0, b"orig%d" % lba)
        for lba in range(4):
            ftl.write(lba, 1.0, b"new%d" % lba)
        scrubber = ReadScrubber(ftl, ScrubConfig(read_limit=20))
        for _ in range(25):
            ftl.read(10)
        scrubber.sweep()
        ftl.rollback(now=2.0)
        for lba in range(4):
            assert ftl.read(lba).payload == b"orig%d" % lba
