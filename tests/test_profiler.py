"""Layer-attributed profiler: accounting, safety, and the do-no-harm gate.

The profiler exists to make the device-path bottleneck legible, so its
two hard obligations are tested here: (1) arming it must not change a
single :class:`~repro.core.detector.DetectionEvent` on the golden
scenario, and (2) its own accounting must be self-consistent — child
inclusive time nested inside the parent, exclusive times that partition
the root, and a report that attributes (and quantifies) its own cost.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import LayerProfiler, Observability
from repro.obs.prof import (
    DEVICE_PATH_PREFIXES,
    PROFILE_SCHEMA,
    build_report,
    calibrate_overhead,
)
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD
from repro.tools.profile import (
    COVERAGE_FLOOR,
    golden_scenario,
    profile_device_replay,
)
from repro.workloads.scenario import Scenario

GOLDEN_SEED = 20180706


def _golden_run(duration=8.0, seed=GOLDEN_SEED):
    return golden_scenario(duration=duration).build(seed=seed,
                                                    duration=duration)


class TestCallTreeAccounting:
    def test_inclusive_exclusive_partition(self):
        prof = LayerProfiler()
        with prof.section("outer"):
            for _ in range(3):
                with prof.section("inner"):
                    pass
        outer = prof.root.children["outer"]
        inner = outer.children["inner"]
        assert outer.calls == 1
        assert inner.calls == 3
        # Child inclusive time nests inside the parent's.
        assert inner.total_ns <= outer.total_ns
        assert outer.exclusive_ns() == outer.total_ns - inner.total_ns
        assert outer.exclusive_ns() >= 0

    def test_reentrant_sections_keep_distinct_tree_paths(self):
        prof = LayerProfiler()
        with prof.section("a"):
            with prof.section("b"):
                with prof.section("a"):
                    pass
        top = prof.root.children["a"]
        nested = top.children["b"].children["a"]
        assert top.calls == 1
        assert nested.calls == 1
        # layers() folds both tree paths into one aggregate row.
        assert prof.layers()["a"]["calls"] == 2

    def test_attributed_seconds_sums_root_children(self):
        prof = LayerProfiler()
        with prof.section("x"):
            pass
        with prof.section("y"):
            pass
        expected = sum(c.total_ns for c in prof.root.children.values()) / 1e9
        assert prof.attributed_seconds() == pytest.approx(expected)

    def test_unbalanced_stop_raises(self):
        prof = LayerProfiler()
        with pytest.raises(ObservabilityError):
            prof.stop()

    def test_section_guard_closes_on_exception(self):
        prof = LayerProfiler()
        with pytest.raises(RuntimeError):
            with prof.section("failing"):
                raise RuntimeError("boom")
        assert prof.depth == 0
        assert prof.root.children["failing"].calls == 1

    def test_calibrated_overhead_is_sane(self):
        per_event_ns = calibrate_overhead(iterations=5_000)
        # A section enter+exit is tens to hundreds of ns on any host this
        # suite runs on; catastrophically wrong calibration (0, or ms+)
        # would poison every report's overhead estimate.
        assert 10 <= per_event_ns <= 100_000


class TestBuildReport:
    def _report(self):
        prof = LayerProfiler()
        with prof.section("replay"):
            with prof.section("ssd.write"):
                with prof.section("ftl.write"):
                    pass
            with prof.section("detector.observe"):
                pass
        return build_report(prof, wall_time_s=1.0, context={"scenario": "t"})

    def test_schema_and_required_fields(self):
        report = self._report()
        assert report["schema"] == PROFILE_SCHEMA
        for key in ("context", "wall_time_s", "coverage", "layers",
                    "device_path", "tree", "overhead"):
            assert key in report, key
        assert report["context"]["scenario"] == "t"
        coverage = report["coverage"]
        assert coverage["attributed_s"] >= 0
        assert 0 <= coverage["fraction_of_wall"] <= 1.01

    def test_device_path_filters_by_prefix(self):
        report = self._report()
        names = [row["layer"] for row in report["layers"]]
        for layer_name in report["device_path"]["top_layers"]:
            assert layer_name.startswith(DEVICE_PATH_PREFIXES)
        assert "detector.observe" in names  # reported, but not device-path

    def test_overhead_is_quantified(self):
        report = self._report()
        overhead = report["overhead"]
        assert overhead["events"] == 4
        assert overhead["calibrated_ns_per_event"] > 0
        assert overhead["estimated_s"] >= 0
        assert 0 <= overhead["estimated_fraction_of_wall"] <= 1

    def test_open_sections_rejected(self):
        prof = LayerProfiler()
        prof.start("replay")
        with pytest.raises(ObservabilityError):
            build_report(prof, wall_time_s=1.0)

    def test_report_is_json_serialisable(self):
        json.dumps(self._report())


class TestDoNoHarm:
    """Arming the profiler must be invisible to detection behaviour."""

    def _replay(self, run, obs):
        device = SimulatedSSD(SSDConfig.small(), obs=obs)
        num_lbas = device.num_lbas
        for request in run.trace:
            lba = request.lba % max(1, num_lbas - request.length)
            device.submit(dataclasses.replace(request, lba=lba))
            if device.read_only:
                device.dismiss_alarm()
        device.tick(run.duration)
        return device

    def test_detection_event_stream_bit_identical(self):
        """Acceptance: profiler-armed run == plain run, event for event."""
        run = _golden_run(duration=8.0)
        plain = self._replay(run, obs=None)
        armed = self._replay(
            run, obs=Observability(profiler=LayerProfiler())
        )
        assert len(plain.detector.events) == len(armed.detector.events)
        for ours, theirs in zip(plain.detector.events,
                                armed.detector.events):
            assert ours == theirs  # frozen dataclass: bitwise field equality
        assert plain.detector.alarm_event == armed.detector.alarm_event


class TestGoldenCoverage:
    def test_golden_replay_attributes_most_of_wall(self):
        """Acceptance: per-layer exclusive times cover >=95% of wall and
        the report names the top device-path layers."""
        run = _golden_run(duration=8.0)
        report = profile_device_replay(run)
        assert report["schema"] == PROFILE_SCHEMA
        assert report["coverage"]["fraction_of_wall"] >= COVERAGE_FLOOR
        top = report["device_path"]["top_layers"]
        assert top, "device-path breakdown must not be empty"
        for layer_name in top:
            assert layer_name.startswith(DEVICE_PATH_PREFIXES)
        # Per-layer exclusive sums partition the attributed wall time
        # (rows are rounded to the microsecond in the report).
        excl_total = sum(row["exclusive_s"] for row in report["layers"])
        assert excl_total == pytest.approx(
            report["coverage"]["attributed_s"], abs=1e-3
        )
        # The report carries the simulated NAND-time complement.
        assert report["context"]["nand_busy"]["total_s"] > 0
