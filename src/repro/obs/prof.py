"""Layer-attributed profiler: where does the device path actually spend time?

``results/BENCH_hotpath.json`` can say the full
:class:`~repro.ssd.device.SimulatedSSD` path runs at ~78k req/s while the
detector alone does ~390k — but not *where inside* NAND / FTL /
latency-model the other 80% goes.  This module is the attribution layer:
lightweight enter/exit hooks threaded through the device, the FTLs, the
NAND array and the detector accumulate **inclusive/exclusive wall time and
call counts per layer** into a call tree, cheap enough to leave compiled
into every hot path.

Design rules (the same ones the tracer follows):

* **disarmed is free** — components cache ``obs.profiler`` (``None`` by
  default) and branch away on a single ``is not None`` test before any
  argument is built; the supercritical detector ``observe`` path swaps in
  a profiled bound method at construction time so the disarmed class body
  is not touched at all;
* **armed is honest** — every ``start``/``stop`` pair costs two
  ``perf_counter_ns`` calls plus a dict probe, and the profiler counts its
  own events and calibrates that cost so the report quantifies its own
  overhead instead of silently folding it into the layers;
* **recording only** — hooks never branch on profiler state in a way that
  changes behaviour: a profiler-armed run's
  :class:`~repro.core.detector.DetectionEvent` stream is bit-identical to
  a plain run (tested in ``tests/test_profiler.py``).

The report (schema ``ssd-insider.profile/v1``) is rendered by
``python -m repro.tools.profile``; see ``docs/observability.md``.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

#: Schema stamped into every profile report.
PROFILE_SCHEMA = "ssd-insider.profile/v1"

#: Layer-name prefixes that belong to the device data path (as opposed to
#: the replay harness or the detector's own pipeline).
DEVICE_PATH_PREFIXES = ("ssd.", "ftl.", "nand.", "queue.")


class ProfileNode:
    """One call-tree node: a layer as reached through one parent chain."""

    __slots__ = ("name", "calls", "total_ns", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_ns = 0
        self.children: Dict[str, "ProfileNode"] = {}

    def exclusive_ns(self) -> int:
        """Inclusive time minus the time attributed to child nodes."""
        return self.total_ns - sum(
            child.total_ns for child in self.children.values()
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready subtree, children ordered by inclusive time."""
        return {
            "name": self.name,
            "calls": self.calls,
            "inclusive_s": self.total_ns / 1e9,
            "exclusive_s": self.exclusive_ns() / 1e9,
            "children": [
                child.as_dict() for child in sorted(
                    self.children.values(),
                    key=lambda node: node.total_ns, reverse=True,
                )
            ],
        }


class _SectionGuard:
    """Shared context manager closing the profiler's innermost section.

    State lives in the profiler's stacks, so one guard instance serves
    arbitrarily nested ``with profiler.section(...)`` blocks, and the
    section is closed even when the body raises.
    """

    __slots__ = ("_profiler",)

    def __init__(self, profiler: "LayerProfiler") -> None:
        self._profiler = profiler

    def __enter__(self) -> "_SectionGuard":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._profiler.stop()
        return False


class _NullGuard:
    """Shared no-op context manager for the disarmed profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullGuard":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_GUARD = _NullGuard()


class NullProfiler:
    """Zero-cost disarmed profiler: every hook is a no-op.

    Hot loops that want branch-free structure can hoist
    ``prof = self._prof or NULL_PROFILER`` once and then write
    ``with prof.section(...)`` unconditionally — the disarmed guard is a
    shared singleton, so the per-iteration cost is one attribute call and
    no allocation.  ``armed`` distinguishes it from a real profiler
    without an ``isinstance`` check.
    """

    __slots__ = ()

    armed = False

    def start(self, name: str) -> None:
        """No-op."""

    def stop(self) -> None:
        """No-op."""

    def section(self, name: str) -> _NullGuard:
        """Return the shared no-op guard."""
        return _NULL_GUARD

    def add(self, name: str, ns: int, calls: int = 1) -> None:
        """No-op."""


#: The shared disarmed profiler instance.
NULL_PROFILER = NullProfiler()


class LayerProfiler:
    """Accumulates per-layer wall time and call counts into a call tree.

    Usage from instrumented code (``prof`` is ``obs.profiler``, cached)::

        if prof is not None:
            with prof.section("ftl.write"):
                ...the write path...

    ``start``/``stop`` are also public for callers that cannot use a
    ``with`` block.  Sections nest; time spent in a child section is
    *inclusive* for every ancestor and *exclusive* only for the child.
    """

    #: Real profilers record; the :data:`NULL_PROFILER` does not.
    armed = True

    def __init__(self) -> None:
        #: Synthetic root; never started or stopped itself.
        self.root = ProfileNode("(root)")
        self._stack: List[ProfileNode] = [self.root]
        self._starts: List[int] = []
        #: Completed start/stop pairs (the overhead model's event count).
        self.events = 0
        self._guard = _SectionGuard(self)

    # -- recording ---------------------------------------------------------

    def start(self, name: str) -> None:
        """Open a section named ``name`` under the current section."""
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = ProfileNode(name)
            parent.children[name] = node
        self._stack.append(node)
        self._starts.append(perf_counter_ns())

    def stop(self) -> None:
        """Close the innermost open section."""
        end = perf_counter_ns()
        if len(self._stack) <= 1:
            raise ObservabilityError("profiler stop() without a matching start()")
        node = self._stack.pop()
        node.total_ns += end - self._starts.pop()
        node.calls += 1
        self.events += 1

    def section(self, name: str) -> _SectionGuard:
        """Open ``name`` and return the shared closing context manager."""
        self.start(name)
        return self._guard

    def add(self, name: str, ns: int, calls: int = 1) -> None:
        """Attribute externally measured time to child ``name`` of the
        currently open section.

        The amortized alternative to ``calls`` nested sections: a hot
        loop brackets its inner spans with raw ``perf_counter_ns`` pairs,
        accumulates, and folds the total into the tree once per batch.
        The node lands exactly where the per-iteration sections would
        have — as a child of the open section — and ``events`` still
        advances by ``calls``, keeping the overhead model conservative
        (an accumulated pair costs two clock reads, less than a full
        start/stop pair).
        """
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = ProfileNode(name)
            parent.children[name] = node
        node.total_ns += ns
        node.calls += calls
        self.events += calls

    @property
    def depth(self) -> int:
        """Currently open (unclosed) sections."""
        return len(self._stack) - 1

    # -- aggregation -------------------------------------------------------

    def layers(self) -> Dict[str, Dict[str, float]]:
        """Aggregate the tree by layer name, summing across parent chains.

        Exclusive times from distinct tree positions are disjoint, so the
        per-layer exclusive sums partition the attributed wall time
        exactly.  (Inclusive sums would double-count a layer nested under
        itself; no instrumented layer in this repo recurses.)
        """
        aggregated: Dict[str, Dict[str, float]] = {}

        def visit(node: ProfileNode) -> None:
            for child in node.children.values():
                entry = aggregated.setdefault(
                    child.name,
                    {"calls": 0, "inclusive_s": 0.0, "exclusive_s": 0.0},
                )
                entry["calls"] += child.calls
                entry["inclusive_s"] += child.total_ns / 1e9
                entry["exclusive_s"] += child.exclusive_ns() / 1e9
                visit(child)

        visit(self.root)
        return aggregated

    def attributed_seconds(self) -> float:
        """Total wall time inside top-level sections (= sum of exclusives)."""
        return sum(child.total_ns for child in self.root.children.values()) / 1e9


def calibrate_overhead(iterations: int = 50_000) -> float:
    """Measure the cost of one ``start``/``stop`` pair, in nanoseconds.

    Runs a throwaway profiler through ``iterations`` empty sections and
    returns the mean pair cost — the per-event term of the overhead model
    stamped into every report.
    """
    probe = LayerProfiler()
    begin = perf_counter_ns()
    for _ in range(iterations):
        probe.start("calibration")
        probe.stop()
    elapsed = perf_counter_ns() - begin
    return elapsed / max(1, iterations)


def build_report(
    profiler: LayerProfiler,
    wall_time_s: float,
    context: Optional[Dict[str, object]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the ``ssd-insider.profile/v1`` report document.

    Args:
        profiler: The armed profiler after the measured run.
        wall_time_s: Independently measured wall time of the profiled
            region (the coverage check compares attribution against it).
        context: Run description (scenario, seeds, device config...).
        meta: Provenance (git SHA, config hash), as produced by
            :func:`repro.tools.bench.report_meta`.
    """
    if profiler.depth:
        raise ObservabilityError(
            f"profiler still has {profiler.depth} open section(s); "
            f"close them before building a report"
        )
    layers = profiler.layers()
    attributed = profiler.attributed_seconds()
    ordered = sorted(
        (
            {
                "layer": name,
                "calls": int(stats["calls"]),
                "inclusive_s": round(stats["inclusive_s"], 6),
                "exclusive_s": round(stats["exclusive_s"], 6),
                "exclusive_pct_of_wall": round(
                    100.0 * stats["exclusive_s"] / wall_time_s, 2
                ) if wall_time_s else 0.0,
            }
            for name, stats in layers.items()
        ),
        key=lambda row: row["exclusive_s"], reverse=True,
    )
    device_rows = [row for row in ordered
                   if str(row["layer"]).startswith(DEVICE_PATH_PREFIXES)]
    device_exclusive = sum(row["exclusive_s"] for row in device_rows)
    per_event_ns = calibrate_overhead()
    overhead_s = profiler.events * per_event_ns / 1e9
    report: Dict[str, object] = {
        "schema": PROFILE_SCHEMA,
        "context": context or {},
        "wall_time_s": round(wall_time_s, 6),
        "coverage": {
            "attributed_s": round(attributed, 6),
            "fraction_of_wall": round(attributed / wall_time_s, 4)
            if wall_time_s else 0.0,
        },
        "layers": ordered,
        "device_path": {
            "exclusive_s": round(device_exclusive, 6),
            "fraction_of_wall": round(device_exclusive / wall_time_s, 4)
            if wall_time_s else 0.0,
            "top_layers": [row["layer"] for row in device_rows[:3]],
        },
        "tree": profiler.root.as_dict(),
        "overhead": {
            "events": profiler.events,
            "calibrated_ns_per_event": round(per_event_ns, 1),
            "estimated_s": round(overhead_s, 6),
            "estimated_fraction_of_wall": round(overhead_s / wall_time_s, 4)
            if wall_time_s else 0.0,
        },
    }
    if meta is not None:
        report["meta"] = meta
    return report
