"""The defend CLI."""

import json

import pytest

from repro.tools import defend


class TestDefendCli:
    def test_fast_sample_perfect_recovery(self, capsys):
        code = defend.main(["--sample", "wannacry", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ALARM" in out
        assert "0.0% loss" in out
        assert "SMART" in out

    def test_no_recover_reports_damage(self, capsys):
        code = defend.main(["--sample", "mole", "--seed", "4",
                            "--no-recover"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rollback" not in out

    def test_unknown_sample_rejected(self):
        with pytest.raises(SystemExit):
            defend.main(["--sample", "badrabbit"])


class TestDefendCliObservability:
    def test_trace_and_metrics_files_written(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = defend.main(["--sample", "wannacry", "--seed", "3",
                            "--trace-out", str(trace),
                            "--metrics", str(metrics)])
        out = capsys.readouterr().out
        assert code == 0  # exit codes unchanged by instrumentation
        assert "trace:" in out and "metrics:" in out

        document = json.loads(trace.read_text(encoding="utf-8"))
        names = {event["name"] for event in document["traceEvents"]}
        assert {"ssd.request", "detector.slice", "ssd.rollback"} <= names

        snapshot = json.loads(metrics.read_text(encoding="utf-8"))
        families = {family["name"] for family in snapshot["families"]}
        assert "recovery_queue_depth" in families
        assert "ssd_request_latency_seconds" in families

    def test_metrics_alone_turns_observability_on(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        code = defend.main(["--sample", "mole", "--seed", "4",
                            "--no-recover", "--metrics", str(metrics)])
        capsys.readouterr()
        assert code == 0
        assert json.loads(metrics.read_text(encoding="utf-8"))["families"]

    def test_instrumented_run_matches_plain_output(self, capsys, tmp_path):
        # Tracing must observe, not perturb: the human-readable report of
        # an instrumented run is identical to the un-instrumented one.
        defend.main(["--sample", "wannacry", "--seed", "3"])
        plain = capsys.readouterr().out
        defend.main(["--sample", "wannacry", "--seed", "3",
                     "--trace-out", str(tmp_path / "trace.json")])
        traced = capsys.readouterr().out
        assert traced.startswith(plain)
        assert "trace:" in traced[len(plain):]
