"""On-disk layout of SimpleFS.

::

    block 0                superblock (JSON in one 4-KB block)
    blocks 1 .. b          free-block bitmap (1 bit per data block)
    blocks b+1 .. i        inode table (INODES_PER_BLOCK inodes per block)
    blocks i+1 .. end      data blocks

The superblock carries the two counters whose staleness after a rollback
produces Table II's "wrong free-block count" and "wrong inode count"
corruption classes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import FilesystemError
from repro.units import BLOCK_SIZE

MAGIC = "SIMPLEFS-1"
INODES_PER_BLOCK = 16


@dataclass(frozen=True)
class FsLayout:
    """Block ranges of each on-disk region."""

    total_blocks: int
    num_inodes: int
    #: Metadata-journal ring size in blocks (0 = journaling disabled).
    journal_blocks: int = 0

    def __post_init__(self) -> None:
        if self.total_blocks < 8:
            raise FilesystemError(f"device too small: {self.total_blocks} blocks")
        if self.num_inodes < 1:
            raise FilesystemError(f"need >= 1 inode, got {self.num_inodes}")
        if self.journal_blocks < 0:
            raise FilesystemError("journal_blocks must be >= 0")
        if self.data_start >= self.total_blocks:
            raise FilesystemError("metadata would not leave any data blocks")

    @property
    def superblock_lba(self) -> int:
        """Block holding the superblock."""
        return 0

    @property
    def bitmap_start(self) -> int:
        """First bitmap block."""
        return 1

    @property
    def bitmap_blocks(self) -> int:
        """Bitmap blocks needed for one bit per *data* block."""
        bits_per_block = BLOCK_SIZE * 8
        return -(-self.total_blocks // bits_per_block)

    @property
    def inode_start(self) -> int:
        """First inode-table block."""
        return self.bitmap_start + self.bitmap_blocks

    @property
    def inode_blocks(self) -> int:
        """Inode-table blocks."""
        return -(-self.num_inodes // INODES_PER_BLOCK)

    @property
    def journal_start(self) -> int:
        """First journal block (meaningful only when journaling is on)."""
        return self.inode_start + self.inode_blocks

    @property
    def data_start(self) -> int:
        """First data block."""
        return self.journal_start + self.journal_blocks

    @property
    def data_blocks(self) -> int:
        """Number of data blocks."""
        return self.total_blocks - self.data_start

    def inode_block_of(self, inode_index: int) -> int:
        """The LBA of the inode-table block holding ``inode_index``."""
        if not (0 <= inode_index < self.num_inodes):
            raise FilesystemError(f"inode {inode_index} out of range")
        return self.inode_start + inode_index // INODES_PER_BLOCK


def encode_block(payload: dict) -> bytes:
    """Serialise a metadata dict into one zero-padded 4-KB block."""
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(raw) > BLOCK_SIZE:
        raise FilesystemError(
            f"metadata record of {len(raw)} bytes exceeds the {BLOCK_SIZE}-byte block"
        )
    return raw + b"\x00" * (BLOCK_SIZE - len(raw))


def decode_block(block: bytes) -> dict:
    """Parse a metadata block written by :func:`encode_block`."""
    raw = block.rstrip(b"\x00")
    if not raw:
        return {}
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FilesystemError(f"corrupt metadata block: {exc}") from exc
