"""GC victim-selection policies and wear accounting."""

import pytest

from repro.ftl.conventional import ConventionalFTL
from repro.ftl.gc import GcPolicy
from repro.ftl.victim import VictimPolicy, select_victim
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry


def array_with_blocks() -> NandArray:
    """Three full blocks: 0 mostly invalid, 1 half, 2 all valid."""
    nand = NandArray(NandGeometry(channels=1, ways=1, blocks_per_chip=4,
                                  pages_per_block=4))
    for block in range(3):
        for page in range(4):
            nand.program(block, lba=block * 4 + page, timestamp=float(block))
    for ppa in [0, 1, 2]:          # block 0: 3 invalid
        nand.invalidate(ppa)
    for ppa in [4, 5]:             # block 1: 2 invalid
        nand.invalidate(ppa)
    return nand


def never_pinned(ppa: int) -> bool:
    return False


def always_candidate(block: int) -> bool:
    return True


class TestGreedy:
    def test_picks_most_invalid(self):
        nand = array_with_blocks()
        victim = select_victim(nand, always_candidate, never_pinned,
                               VictimPolicy.GREEDY)
        assert victim == 0

    def test_ignores_open_blocks(self):
        nand = array_with_blocks()
        nand.program(3, lba=99, timestamp=0.0)  # block 3 not full
        nand.invalidate(3 * 4)
        victim = select_victim(nand, always_candidate, never_pinned,
                               VictimPolicy.GREEDY)
        assert victim == 0

    def test_none_when_nothing_reclaimable(self):
        nand = NandArray(NandGeometry(channels=1, ways=1, blocks_per_chip=2,
                                      pages_per_block=2))
        for page in range(2):
            nand.program(0, lba=page, timestamp=0.0)
        assert select_victim(nand, always_candidate, never_pinned,
                             VictimPolicy.GREEDY) is None

    def test_pins_reduce_reclaimable(self):
        nand = array_with_blocks()
        pinned = {0, 1, 2}  # all of block 0's invalid pages are pinned
        victim = select_victim(nand, always_candidate,
                               lambda ppa: ppa in pinned,
                               VictimPolicy.GREEDY)
        assert victim == 1  # block 0 reclaims nothing now

    def test_candidate_filter_respected(self):
        nand = array_with_blocks()
        victim = select_victim(nand, lambda b: b != 0, never_pinned,
                               VictimPolicy.GREEDY)
        assert victim == 1


class TestCostBenefit:
    def test_prefers_old_block_among_comparable(self):
        nand = NandArray(NandGeometry(channels=1, ways=1, blocks_per_chip=4,
                                      pages_per_block=4))
        # Block 0: old (t=0), 2 invalid.  Block 1: new (t=100), 2 invalid.
        for block, stamp in ((0, 0.0), (1, 100.0)):
            for page in range(4):
                nand.program(block, lba=block * 4 + page, timestamp=stamp)
            nand.invalidate(block * 4)
            nand.invalidate(block * 4 + 1)
        victim = select_victim(nand, always_candidate, never_pinned,
                               VictimPolicy.COST_BENEFIT, now=200.0)
        assert victim == 0

    def test_fully_invalid_block_always_wins(self):
        nand = array_with_blocks()
        nand.invalidate(3)  # block 0 now fully invalid
        victim = select_victim(nand, always_candidate, never_pinned,
                               VictimPolicy.COST_BENEFIT, now=10.0)
        assert victim == 0


class TestWearAware:
    def test_prefers_less_worn_on_tie(self):
        nand = NandArray(NandGeometry(channels=1, ways=1, blocks_per_chip=4,
                                      pages_per_block=4))
        # Wear block 0 heavily first.
        for _ in range(5):
            ppa = nand.program(0, lba=1, timestamp=0.0)
            nand.invalidate(ppa)
            for page in range(1, 4):
                p = nand.program(0, lba=page, timestamp=0.0)
                nand.invalidate(p)
            nand.erase(0)
        # Now both blocks are full with equal invalid counts.
        for block in (0, 1):
            for page in range(4):
                nand.program(block, lba=10 * block + page, timestamp=0.0)
            nand.invalidate(block * 4 + 0)
            nand.invalidate(block * 4 + 1)
        victim = select_victim(nand, always_candidate, never_pinned,
                               VictimPolicy.WEAR_AWARE)
        assert victim == 1  # the un-worn block


class TestWearStats:
    def test_even_wear_has_zero_spread(self, tiny_nand):
        stats = tiny_nand.wear_stats()
        assert stats.spread == 0
        assert stats.mean_erases == 0.0

    def test_spread_counts_difference(self):
        nand = NandArray(NandGeometry(channels=1, ways=1, blocks_per_chip=2,
                                      pages_per_block=2))
        ppa = nand.program(0, lba=0, timestamp=0.0)
        nand.invalidate(ppa)
        nand.erase(0)
        stats = nand.wear_stats()
        assert stats.max_erases == 1 and stats.min_erases == 0
        assert stats.spread == 1
        assert stats.std_erases > 0


class TestPolicyThroughFtl:
    @pytest.mark.parametrize("policy", list(VictimPolicy))
    def test_ftl_sustains_churn_under_every_policy(self, policy):
        nand = NandArray(NandGeometry(channels=1, ways=1, blocks_per_chip=12,
                                      pages_per_block=8))
        ftl = ConventionalFTL(nand, op_ratio=0.45,
                              gc_policy=GcPolicy(victim_policy=policy))
        for round_number in range(6):
            for lba in range(ftl.num_lbas):
                ftl.write(lba, float(round_number),
                          payload=b"%d" % round_number)
        for lba in range(ftl.num_lbas):
            assert ftl.read(lba).payload == b"5"
