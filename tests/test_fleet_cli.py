"""The fleet CLI: every flag documented in docs/fleet.md, exercised."""

import json

import pytest

from repro.fleet.record import read_fleet_file
from repro.tools import fleet


@pytest.fixture(scope="module")
def fleet_file(tmp_path_factory):
    """One golden 8-device CLI run shared by the module's tests.

    Exercises: run --devices --shards --seed --scenario-mix
    --benign-fraction --num-lbas --duration --out --report-out --quiet.
    """
    root = tmp_path_factory.mktemp("fleetcli")
    out = root / "fleet.fleetrec"
    report = root / "report.json"
    code = fleet.main([
        "run", "--devices", "8", "--shards", "1", "--seed", "7",
        "--scenario-mix", "test-ransom-only,test-outlooksync-mole",
        "--benign-fraction", "0.5", "--num-lbas", "4000",
        "--duration", "10", "--out", str(out),
        "--report-out", str(report), "--quiet",
    ])
    assert code == 0
    return out, report


class TestRun:
    def test_writes_fleet_file_and_report(self, fleet_file, capsys):
        out, report = fleet_file
        capsys.readouterr()
        header, records = read_fleet_file(out)
        assert len(records) == 8
        assert header["seed"] == 7
        document = json.loads(report.read_text(encoding="utf-8"))
        assert document["schema"] == "ssd-insider.fleetreport/v1"
        assert document["population"]["devices"] == 8
        assert document["run"]["shards"] == 1
        assert document["run"]["devices_per_sec"] > 0

    def test_oracle_passes_on_sharded_run(self, tmp_path, capsys):
        """run --oracle: sharded must match the sequential reference."""
        out = tmp_path / "oracle.fleetrec"
        code = fleet.main([
            "run", "--devices", "4", "--shards", "2", "--seed", "3",
            "--scenario-mix", "test-ransom-only", "--num-lbas", "4000",
            "--duration", "10", "--out", str(out), "--oracle", "--quiet",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "records identical: True" in captured
        assert "merged metrics identical: True" in captured

    def test_oracle_on_sequential_run_is_a_noop(self, tmp_path, capsys):
        out = tmp_path / "seq.fleetrec"
        code = fleet.main([
            "run", "--devices", "1", "--shards", "1", "--seed", "3",
            "--scenario-mix", "test-ransom-only", "--num-lbas", "4000",
            "--duration", "10", "--out", str(out), "--oracle", "--quiet",
        ])
        assert code == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_unknown_scenario_fails_fast(self, tmp_path, capsys):
        """Operator typos are caught up front (exit 2), not smeared
        across N error records."""
        code = fleet.main([
            "run", "--devices", "2", "--scenario-mix", "no-such",
            "--out", str(tmp_path / "x.fleetrec"), "--quiet",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown scenario" in captured.err


class TestReport:
    def test_renders_population_report(self, fleet_file, capsys):
        out, _ = fleet_file
        code = fleet.main(["report", str(out), "--top", "3"])
        rendered = capsys.readouterr().out
        assert code == 0
        assert "population FAR" in rendered
        assert "population FRR" in rendered
        assert "per category" in rendered
        assert "triage queue" in rendered

    def test_json_out(self, fleet_file, tmp_path, capsys):
        out, _ = fleet_file
        path = tmp_path / "report.json"
        code = fleet.main(["report", str(out), "--json", str(path)])
        capsys.readouterr()
        assert code == 0
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["population"]["devices"] == 8
        assert "metrics" in document


class TestTriage:
    def test_queue_lists_repro_commands(self, fleet_file, capsys):
        out, _ = fleet_file
        code = fleet.main(["triage", str(out), "--top", "5"])
        rendered = capsys.readouterr().out
        assert code == 0
        assert "repro: python -m repro.tools.fleet replay" in rendered

    def test_cut_incidents_writes_bundles(self, fleet_file, tmp_path,
                                          capsys):
        out, _ = fleet_file
        incidents_dir = tmp_path / "incidents"
        code = fleet.main(["triage", str(out), "--top", "1",
                           "--cut-incidents", str(incidents_dir)])
        capsys.readouterr()
        assert code == 0
        bundles = list(incidents_dir.glob("INCIDENT_*.json"))
        assert len(bundles) == 1
        bundle = json.loads(bundles[0].read_text(encoding="utf-8"))
        assert bundle["schema"] == "ssd-insider.incident/v1"


class TestTelemetryFlags:
    @pytest.fixture(scope="class")
    def telemetry_run(self, fleet_file, tmp_path_factory):
        """One telemetry-armed CLI run over the fixture's exact plan."""
        root = tmp_path_factory.mktemp("fleettele")
        out = root / "armed.fleetrec"
        prom = root / "fleet.prom"
        snapshot = root / "top.json"
        timeline = root / "timeline.json"
        code = fleet.main([
            "run", "--devices", "8", "--shards", "2", "--seed", "7",
            "--scenario-mix", "test-ransom-only,test-outlooksync-mole",
            "--benign-fraction", "0.5", "--num-lbas", "4000",
            "--duration", "10", "--out", str(out), "--quiet",
            "--telemetry-interval", "0.05",
            "--prom-out", str(prom), "--snapshot-out", str(snapshot),
            "--timeline-out", str(timeline),
        ])
        assert code == 0
        return out, prom, snapshot, timeline

    def test_armed_fleetrec_is_byte_identical(self, fleet_file,
                                              telemetry_run, capsys):
        """The CLI-level inertness gate (same plan, telemetry on/off,
        sharded vs sequential): identical fleet file bytes."""
        capsys.readouterr()
        plain_out, _ = fleet_file
        armed_out = telemetry_run[0]
        assert armed_out.read_bytes() == plain_out.read_bytes()

    def test_prometheus_textfile_exported(self, telemetry_run, capsys):
        capsys.readouterr()
        prom = telemetry_run[1].read_text(encoding="utf-8")
        assert 'fleet_devices{state="done"} 8' in prom
        assert "fleet_heartbeats_total" in prom

    def test_snapshot_documents_finished_run(self, telemetry_run, capsys):
        capsys.readouterr()
        document = json.loads(
            telemetry_run[2].read_text(encoding="utf-8"))
        assert document["schema"] == "ssd-insider.fleettop/v1"
        assert document["done"] is True
        assert document["devices"] == {"total": 8, "done": 8,
                                       "in_flight": 0}

    def test_timeline_has_one_track_per_device(self, telemetry_run,
                                               capsys):
        capsys.readouterr()
        document = json.loads(
            telemetry_run[3].read_text(encoding="utf-8"))
        tracks = [e for e in document["traceEvents"]
                  if e["name"] == "process_name"]
        assert len(tracks) == 8
        assert document["otherData"]["clock"] == "sim"
        assert {e["pid"] for e in tracks} == set(range(1, 9))


class TestTop:
    def test_renders_snapshot(self, tmp_path, capsys):
        snapshot = {
            "schema": "ssd-insider.fleettop/v1", "done": True,
            "devices": {"total": 4, "done": 4, "in_flight": 0},
            "devices_per_sec": 2.0, "elapsed_s": 2.0,
            "verdicts": {"clean": 3, "true_alarm": 1},
            "in_flight": [], "stalled": [], "stall_timeout_s": 30.0,
        }
        path = tmp_path / "top.json"
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        code = fleet.main(["top", str(path)])
        rendered = capsys.readouterr().out
        assert code == 0
        assert "4/4 devices done" in rendered
        assert "true_alarm=1" in rendered

    def test_missing_snapshot_exits_2(self, tmp_path, capsys):
        code = fleet.main(["top", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no snapshot" in captured.err

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}),
                        encoding="utf-8")
        code = fleet.main(["top", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "not a ssd-insider.fleettop/v1" in captured.err


class TestReplay:
    def test_replay_matches_record_bit_for_bit(self, fleet_file, capsys):
        out, _ = fleet_file
        _, records = read_fleet_file(out)
        device_id = str(records[2]["device_id"])
        code = fleet.main(["replay", str(out), "--device", device_id[:6]])
        rendered = capsys.readouterr().out
        assert code == 0
        assert "record match" in rendered

    def test_unknown_device_exits_2(self, fleet_file, capsys):
        out, _ = fleet_file
        code = fleet.main(["replay", str(out), "--device", "zzzz"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no device" in captured.err
