"""Messenger workload (the paper's KakaoTalk / SQLite scenario).

Chat clients persist messages in SQLite: tiny bursts of single-page
read-modify-writes plus occasional small attachment writes.  The lightest
background in Table I — present to confirm the detector's FAR stays zero on
ordinary desktop noise.
"""

from __future__ import annotations

from typing import Iterator

from repro.blockdev.request import IOMode, IORequest
from repro.workloads.base import LbaRegion, Workload


class MessengerApp(Workload):
    """SQLite page updates on incoming messages, rare attachment writes."""

    def __init__(
        self,
        region: LbaRegion,
        messages_per_second: float = 1.5,
        attachment_prob: float = 0.05,
        name: str = "kakaotalk",
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__(name, region, start, duration, seed, time_scale)
        self.messages_per_second = messages_per_second
        self.attachment_prob = attachment_prob
        split = max(2, int(region.length * 0.3))
        self.db_region = region.sub(0, split)
        self.blob_region = region.sub(split, region.length - split)
        self._blob_cursor = self.blob_region.start

    def requests(self) -> Iterator[IORequest]:
        """Yield message commits and occasional attachments."""
        now = self.start
        while True:
            now += self._gap(self.messages_per_second)
            if now >= self.deadline:
                return
            # WAL-ish commit: read the page, write the page, touch the
            # journal block.
            page = self.db_region.start + int(self.rng.integers(0, self.db_region.length))
            yield self._request(now, page, IOMode.READ, 1)
            yield self._request(now, page, IOMode.WRITE, 1)
            if self.rng.random() < self.attachment_prob:
                length = int(self.rng.integers(2, 17))
                length = max(1, min(length, self.blob_region.end - self._blob_cursor))
                yield self._request(now, self._blob_cursor, IOMode.WRITE, length)
                self._blob_cursor += length
                if self._blob_cursor >= self.blob_region.end - 1:
                    self._blob_cursor = self.blob_region.start
