"""ECC read-retry policy and reliability accounting for the NAND array.

Real NAND controllers correct a few raw bit errors in-line with BCH/LDPC
codes; when a read exceeds the code's strength they *retry* the read with
shifted sense voltages, each attempt slower than the last, until either
the data corrects or a (small) retry budget runs out and the sector is
reported uncorrectable.  :class:`EccConfig` captures that budget and its
latency backoff; :class:`ReliabilityCounters` accumulates what actually
happened — the numbers SMART-style health reporting and the fault sweep
read back out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class EccConfig:
    """The firmware's read-retry budget and its cost model.

    Attributes:
        max_read_retries: Retries allowed after the initial read before a
            page is declared uncorrectable (real firmware uses a handful
            of retry voltage steps).
        retry_backoff: Latency multiplier per successive retry — retry
            *i* (1-based) costs ``page_read * retry_backoff ** (i - 1)``,
            modelling the increasingly exotic sensing modes firmware
            falls back to.
    """

    max_read_retries: int = 4
    retry_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_read_retries < 0:
            raise ConfigError(
                f"max_read_retries must be >= 0, got {self.max_read_retries}"
            )
        if self.retry_backoff < 1.0:
            raise ConfigError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}"
            )


@dataclass
class ReliabilityCounters:
    """Media-fault outcomes accumulated by one NAND array.

    These count *outcomes* (what the firmware experienced), while
    :class:`~repro.faults.injector.FaultStats` counts *injections* (what
    the fault model fired); the two reconcile in tests.
    """

    #: Reads that returned raw bit errors but were corrected (in-line or
    #: after retries).
    corrected_reads: int = 0
    #: Individual ECC read retries performed.
    read_retries: int = 0
    #: Reads abandoned after the retry budget — data lost.
    uncorrectable_reads: int = 0
    #: Page programs that failed verify (pages burned).
    program_fails: int = 0
    #: Block erases that failed verify (blocks worn out).
    erase_fails: int = 0

    def snapshot(self) -> "ReliabilityCounters":
        """An independent copy of the current counters."""
        import dataclasses

        return dataclasses.replace(self)

    def as_dict(self) -> dict:
        """JSON-ready counter values (stamped into profile reports)."""
        import dataclasses

        return dataclasses.asdict(self)
