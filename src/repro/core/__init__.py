"""SSD-Insider's detection pipeline (the paper's primary contribution).

The pipeline, end to end:

1. every block-I/O request header updates the :mod:`counting table
   <repro.core.counting_table>`, which tracks run-lengths of reads and the
   overwrites that follow them (Fig. 3);
2. at each 1-second time-slice boundary the six features — OWIO, OWST,
   PWIO, AVGWIO, OWSLOPE, IO — are computed over the sliding 10-slice
   window (:mod:`repro.core.features`);
3. an :mod:`ID3 decision tree <repro.core.id3>` classifies the slice as
   ransomware-active or not;
4. the per-slice verdicts are summed over the window into a 0–10 score
   (:mod:`repro.core.score`); crossing the threshold (3) raises the alarm
   (Algorithm 1, Fig. 4).
"""

from repro.core.config import DetectorConfig
from repro.core.counting_table import CountingTable, TableEntry
from repro.core.detector import DetectionEvent, RansomwareDetector
from repro.core.features import FEATURE_NAMES, FeatureVector
from repro.core.id3 import DecisionTree, TreeNode
from repro.core.memory import MemoryBudget, paper_memory_budget
from repro.core.pretrained import default_tree
from repro.core.score import ScoreTracker
from repro.core.window import SliceStats, SlidingWindow

__all__ = [
    "CountingTable",
    "DecisionTree",
    "DetectionEvent",
    "DetectorConfig",
    "FEATURE_NAMES",
    "FeatureVector",
    "MemoryBudget",
    "RansomwareDetector",
    "ScoreTracker",
    "SliceStats",
    "SlidingWindow",
    "TableEntry",
    "TreeNode",
    "default_tree",
    "paper_memory_budget",
]
