"""Smoke tests for the ablation/extension experiments (scaled down)."""

import pytest

from repro.experiments import (
    ablation_classifier,
    ablation_features,
    ablation_gc,
    ablation_window,
    evasion,
)
from repro.nand.geometry import NandGeometry


class TestFeatureAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_features.run(seed=9, duration=40.0,
                                     runs_per_scenario=1, repetitions=1)

    def test_one_row_per_feature_plus_reference(self, result):
        assert len(result.rows) == 7
        assert result.rows[0].dropped == "(none)"

    def test_render(self, result):
        assert "dropped feature" in result.render()

    def test_rates_are_rates(self, result):
        for row in result.rows:
            assert 0.0 <= row.worst_far <= 1.0
            assert 0.0 <= row.worst_frr <= 1.0

    def test_row_lookup(self, result):
        assert result.row("owio").dropped == "owio"
        with pytest.raises(KeyError):
            result.row("entropy")


class TestClassifierAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_classifier.run(seed=9, duration=40.0,
                                       runs_per_scenario=1, repetitions=1)

    def test_three_models(self, result):
        assert {row.name for row in result.rows} == {
            "id3-tree", "logistic", "stump",
        }

    def test_stump_is_smallest(self, result):
        assert result.row("stump").memory_bytes < \
            result.row("id3-tree").memory_bytes

    def test_render(self, result):
        assert "model DRAM" in result.render()


class TestWindowAblation:
    def test_sweep_structure(self):
        result = ablation_window.run(windows=(5,), thresholds=(2, 3),
                                     seed=9, duration=40.0, repetitions=1,
                                     runs_per_scenario=1)
        assert len(result.rows) == 2
        assert result.row(5, 2).window_slices == 5
        assert "window N" in result.render()

    def test_threshold_above_window_skipped(self):
        result = ablation_window.run(windows=(3,), thresholds=(2, 5),
                                     seed=9, duration=30.0, repetitions=1,
                                     runs_per_scenario=1)
        assert len(result.rows) == 1


class TestGcAblation:
    def test_all_policy_combinations(self):
        result = ablation_gc.run(
            utilization=0.8, seed=9, duration=15.0,
            geometry=NandGeometry(channels=1, ways=2, blocks_per_chip=64,
                                  pages_per_block=64),
        )
        assert len(result.rows) == 6
        assert {row.policy for row in result.rows} == {
            "greedy", "cost_benefit", "wear_aware",
        }
        for row in result.rows:
            assert row.write_amplification >= 1.0
            assert row.wear_spread >= 0


class TestEvasion:
    @pytest.fixture(scope="class")
    def result(self, pretrained_tree):
        return evasion.run(rates=(10, 400), seed=9, duration=45.0,
                           repetitions=1, tree=pretrained_tree)

    def test_fast_attack_detected(self, result):
        fast = [r for r in result.rows if r.blocks_per_second == 400][0]
        assert fast.detection_rate == 1.0
        assert fast.mean_latency <= 10.0

    def test_damage_scales_with_rate(self, result):
        slow, fast = result.rows
        assert slow.damage_blocks_per_minute < fast.damage_blocks_per_minute

    def test_render(self, result):
        assert "Evasion sweep" in result.render()
