"""Terminal sparkline rendering."""

from repro.analysis.report import render_sparkline


class TestRenderSparkline:
    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_flat_zero_series(self):
        assert render_sparkline([0, 0, 0]) == "▁▁▁"

    def test_peak_maps_to_full_block(self):
        line = render_sparkline([0, 5, 10])
        assert line[-1] == "█"
        assert line[0] == "▁"

    def test_monotone_series_monotone_glyphs(self):
        line = render_sparkline(list(range(8)))
        assert list(line) == sorted(line, key="▁▂▃▄▅▆▇█".index)

    def test_long_series_bucketed_to_width(self):
        line = render_sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_short_series_not_padded(self):
        assert len(render_sparkline([1, 2], width=40)) == 2
