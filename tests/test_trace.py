"""Trace container: ordering, stats, filtering, persistence."""

import pytest

from repro.blockdev.request import IOMode, IORequest, read, write
from repro.blockdev.trace import Trace
from repro.errors import TraceError


def make_trace() -> Trace:
    return Trace(
        [
            read(0.0, 0, length=2, source="a"),
            write(0.5, 0, length=2, source="a"),
            read(1.0, 10, source="b"),
            write(2.0, 50, length=4, source="b"),
        ]
    )


class TestOrdering:
    def test_append_in_order(self):
        trace = Trace()
        trace.append(read(0.0, 0))
        trace.append(read(1.0, 1))
        assert len(trace) == 2

    def test_append_equal_time_ok(self):
        trace = Trace([read(1.0, 0)])
        trace.append(read(1.0, 1))
        assert len(trace) == 2

    def test_rejects_time_regression(self):
        trace = Trace([read(1.0, 0)])
        with pytest.raises(TraceError):
            trace.append(read(0.5, 1))

    def test_indexing(self):
        trace = make_trace()
        assert trace[2].lba == 10


class TestStats:
    def test_counts(self):
        stats = make_trace().stats()
        assert stats.num_requests == 4
        assert stats.num_reads == 2
        assert stats.num_writes == 2

    def test_block_counts(self):
        stats = make_trace().stats()
        assert stats.blocks_read == 3
        assert stats.blocks_written == 6

    def test_unique_lbas(self):
        # 0,1 (twice), 10, 50..53 -> 7 unique
        assert make_trace().stats().unique_lbas == 7

    def test_duration(self):
        assert make_trace().duration == pytest.approx(2.0)

    def test_empty_trace(self):
        stats = Trace().stats()
        assert stats.num_requests == 0
        assert stats.write_fraction == 0.0

    def test_write_fraction(self):
        assert make_trace().stats().write_fraction == pytest.approx(0.5)


class TestFiltering:
    def test_sources(self):
        assert make_trace().sources() == {"a": 2, "b": 2}

    def test_filter_source(self):
        filtered = make_trace().filter_source("a")
        assert len(filtered) == 2
        assert all(r.source == "a" for r in filtered)

    def test_slice_time_half_open(self):
        sliced = make_trace().slice_time(0.5, 2.0)
        assert [r.time for r in sliced] == [0.5, 1.0]


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        assert [r.lba for r in loaded] == [r.lba for r in trace]
        assert [r.source for r in loaded] == [r.source for r in trace]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0, "lba": "noise"}\n')
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 0.0, "lba": 1, "mode": "R", "len": 1}\n\n')
        assert len(Trace.load(path)) == 1
