#!/usr/bin/env python
"""Garbage-collection overhead study (the Fig. 9 scenario, interactive).

Compares the conventional FTL against the SSD-Insider FTL across space
utilisations, showing where delayed deletion starts costing extra page
copies — near-free at moderate fill, ~tens of percent near-full — and how
write amplification moves with it.

Run:  python examples/gc_overhead_study.py
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments import fig9
from repro.nand.geometry import NandGeometry
from repro.workloads.catalog import testing_scenarios


def main() -> None:
    geometry = NandGeometry(channels=2, ways=2, blocks_per_chip=96,
                            pages_per_block=64)
    # The three write-heaviest testing combinations dominate GC traffic.
    heavy = [
        s for s in testing_scenarios()
        if s.name in (
            "test-ransom-only",
            "test-datawiping-globeimposter",
            "test-p2pdown-wannacry",
        )
    ]
    rows = []
    for utilization in (0.5, 0.7, 0.8, 0.9):
        result = fig9.run(
            utilization=utilization,
            duration=30.0,
            geometry=geometry,
            scenarios=heavy,
        )
        conventional = sum(r.conventional_copies for r in result.rows)
        insider = sum(r.insider_copies for r in result.rows)
        pinned = sum(r.pinned_copies for r in result.rows)
        overhead = insider / conventional - 1.0 if conventional else 0.0
        rows.append(
            (f"{utilization:.0%}", conventional, insider, pinned,
             f"{overhead:+.1%}")
        )
    print("GC page copies vs space utilisation (3 write-heavy traces):")
    print(render_table(
        ("utilisation", "conventional", "ssd-insider", "pinned", "overhead"),
        rows,
    ))
    print("\nAs the paper reports: negligible extra copies at moderate fill,")
    print("a modest surcharge (tens of percent) at 90% - the price of")
    print("keeping every overwritten page recoverable for one window.")


if __name__ == "__main__":
    main()
