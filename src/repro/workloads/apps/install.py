"""Software-installation workload (the paper's AutoCAD / Visual Studio).

Installers unpack large payloads as fresh sequential writes, but they also
churn temp files (write, read back, overwrite) and patch configuration and
registry blocks in place.  That churn generates enough genuine overwrites
that Install is one of the few backgrounds with non-zero FAR at very low
thresholds in Fig. 7 — another reason the paper operates at threshold 3.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.blockdev.request import IOMode, IORequest
from repro.workloads.base import LbaRegion, Workload


class InstallApp(Workload):
    """Payload unpack + temp-file churn + config patching."""

    def __init__(
        self,
        region: LbaRegion,
        unpack_blocks_per_second: float = 700.0,
        temp_churn_per_second: float = 4.0,
        config_patch_per_second: float = 6.0,
        name: str = "install",
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__(name, region, start, duration, seed, time_scale)
        self.unpack_blocks_per_second = unpack_blocks_per_second
        self.temp_churn_per_second = temp_churn_per_second
        self.config_patch_per_second = config_patch_per_second
        split = max(2, int(region.length * 0.8))
        self.payload_region = region.sub(0, split)
        self.scratch_region = region.sub(split, region.length - split)

    def requests(self) -> Iterator[IORequest]:
        """Yield interleaved unpack, temp-churn and config events."""
        now = self.start
        payload_cursor = self.payload_region.start
        events: List[str] = ["unpack", "temp", "config"]
        # Interleave three event streams by sampling which fires next.
        rates = {
            "unpack": self.unpack_blocks_per_second / 8.0,  # 8-block chunks
            "temp": self.temp_churn_per_second,
            "config": self.config_patch_per_second,
        }
        total_rate = sum(rates.values())
        weights = [rates[e] / total_rate for e in events]
        while True:
            now += self._gap(total_rate)
            if now >= self.deadline:
                return
            event = events[int(self.rng.choice(len(events), p=weights))]
            if event == "unpack":
                length = self._clip_payload(payload_cursor, 8)
                yield self._request(now, payload_cursor, IOMode.WRITE, length)
                payload_cursor += length
                if payload_cursor >= self.payload_region.end:
                    payload_cursor = self.payload_region.start
            elif event == "temp":
                # Temp churn: write a few blocks, read them, overwrite them.
                base = self.scratch_region.start + int(
                    self.rng.integers(0, max(1, self.scratch_region.length - 4))
                )
                length = int(self.rng.integers(1, 5))
                length = max(1, min(length, self.scratch_region.end - base))
                yield self._request(now, base, IOMode.WRITE, length)
                yield self._request(now, base, IOMode.READ, length)
                yield self._request(now, base, IOMode.WRITE, length)
            else:
                # Config/registry patch: read-modify-write of one block.
                lba = self.scratch_region.end - 1 - int(self.rng.integers(0, 4))
                lba = max(self.scratch_region.start, lba)
                yield self._request(now, lba, IOMode.READ, 1)
                yield self._request(now, lba, IOMode.WRITE, 1)

    def _clip_payload(self, cursor: int, length: int) -> int:
        return max(1, min(length, self.payload_region.end - cursor))
