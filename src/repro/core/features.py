"""The six invariant ransomware features (§III-A).

Computed at every slice boundary from the counting table and the sliding
window:

===========  ===============================================================
Feature      Definition implemented (Fig. 3 semantics)
===========  ===============================================================
``OWIO``     Overwrite events during the latest slice.
``OWST``     Distinct LBAs overwritten in the window / blocks written in the
             window (duplicate overwrites of one block count once — this is
             what separates DoD-style wiping, which rewrites each block 7x,
             from ransomware, which overwrites each block once).
``PWIO``     Overwrite events summed over the previous window (the N slices
             before the latest).
``AVGWIO``   Mean WL over the counting-table entries alive in the window —
             the average length of continuously overwritten runs.
``OWSLOPE``  OWIO / PWIO — the abrupt-increase signal; when PWIO is zero
             the slope degrades to OWIO itself (treating the quiet previous
             window as unit activity).
``IO``       RIO + WIO of the latest slice.  §III-A describes a ratio
             variant instead; Fig. 3 (the implementation the paper's
             results use) defines ``IO = RIO + WIO``, which is what we
             implement — see DESIGN.md "paper ambiguities".
===========  ===============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.counting_table import CountingTable
from repro.core.window import SlidingWindow

#: Canonical feature order used by the tree and the training matrices.
FEATURE_NAMES: Tuple[str, ...] = (
    "owio",
    "owst",
    "pwio",
    "avgwio",
    "owslope",
    "io",
)


@dataclass(frozen=True)
class FeatureVector:
    """One slice's feature values in the canonical order."""

    owio: float
    owst: float
    pwio: float
    avgwio: float
    owslope: float
    io: float

    def as_tuple(self) -> Tuple[float, ...]:
        """Values in :data:`FEATURE_NAMES` order."""
        return (self.owio, self.owst, self.pwio, self.avgwio, self.owslope, self.io)

    def as_dict(self) -> Dict[str, float]:
        """Name -> value mapping."""
        return dict(zip(FEATURE_NAMES, self.as_tuple()))

    def as_list(self) -> List[float]:
        """Values as a mutable list (training-matrix row)."""
        return list(self.as_tuple())


def compute_features(table: CountingTable, window: SlidingWindow) -> FeatureVector:
    """Evaluate the six features after a slice has been pushed to the window.

    Must be called with the just-closed slice already in ``window`` (it is
    the slice the features describe).
    """
    latest = window.latest
    if latest is None:
        return FeatureVector(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    owio = float(latest.owio)
    pwio = float(window.pwio())
    wio_window = window.wio_window()
    owst = window.unique_overwritten() / wio_window if wio_window > 0 else 0.0
    avgwio = table.mean_wl()
    owslope = owio / pwio if pwio > 0 else owio
    io = float(latest.io)
    return FeatureVector(
        owio=owio,
        owst=owst,
        pwio=pwio,
        avgwio=avgwio,
        owslope=owslope,
        io=io,
    )
