"""Simulated clock.

All components share one :class:`SimClock`; time only moves when a workload
or the test harness advances it.  Using simulated time keeps every experiment
deterministic and lets a "10-second" detection window run in microseconds of
wall-clock time.
"""

from __future__ import annotations


class SimClock:
    """A monotonically non-decreasing simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
