"""The six features' definitions (Fig. 3 semantics)."""

import pytest

from repro.core.counting_table import CountingTable
from repro.core.features import FEATURE_NAMES, FeatureVector, compute_features
from repro.core.window import SliceStats, SlidingWindow


def build(slices, table=None):
    """Push prepared slices into a window and compute features."""
    window = SlidingWindow(10)
    for stats in slices:
        window.push(stats)
    return compute_features(table or CountingTable(), window)


def make_slice(index, rio=0, wio=0, owio=0, lbas=()):
    stats = SliceStats(index=index, rio=rio, wio=wio, owio=owio)
    stats.overwritten_lbas.update(lbas)
    return stats


class TestVectorShape:
    def test_names_order(self):
        assert FEATURE_NAMES == ("owio", "owst", "pwio", "avgwio", "owslope", "io")

    def test_tuple_matches_names(self):
        vector = FeatureVector(1, 2, 3, 4, 5, 6)
        assert vector.as_dict() == {
            "owio": 1, "owst": 2, "pwio": 3, "avgwio": 4, "owslope": 5, "io": 6,
        }
        assert vector.as_list() == [1, 2, 3, 4, 5, 6]

    def test_empty_window(self):
        vector = compute_features(CountingTable(), SlidingWindow(10))
        assert vector.as_tuple() == (0, 0, 0, 0, 0, 0)


class TestDefinitions:
    def test_owio_is_latest_slice(self):
        vector = build([make_slice(0, owio=9), make_slice(1, owio=4)])
        assert vector.owio == 4

    def test_io_is_latest_rio_plus_wio(self):
        vector = build([make_slice(0, rio=3, wio=2)])
        assert vector.io == 5

    def test_pwio_sums_previous_slices(self):
        vector = build([make_slice(0, owio=5), make_slice(1, owio=7),
                        make_slice(2, owio=100)])
        assert vector.pwio == 12

    def test_owst_dedupes_within_window(self):
        """Seven write passes over one block count once in OWST."""
        slices = [make_slice(0, wio=7, owio=7, lbas={42})]
        vector = build(slices)
        assert vector.owst == pytest.approx(1 / 7)

    def test_owst_zero_without_writes(self):
        vector = build([make_slice(0, rio=5)])
        assert vector.owst == 0.0

    def test_owslope_ratio(self):
        vector = build([make_slice(0, owio=10), make_slice(1, owio=5)])
        assert vector.owslope == pytest.approx(0.5)

    def test_owslope_degrades_to_owio_when_no_history(self):
        vector = build([make_slice(0, owio=10)])
        assert vector.owslope == 10.0

    def test_avgwio_from_table(self):
        table = CountingTable()
        for lba in range(4):
            table.record_read(lba, 0)
        for lba in range(4):
            table.record_write(lba, 0)
        vector = build([make_slice(0, wio=4, owio=4)], table=table)
        assert vector.avgwio == pytest.approx(4.0)
