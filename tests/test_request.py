"""IORequest header semantics."""

import pytest

from repro.blockdev.request import IOMode, IORequest, read, write


class TestConstruction:
    def test_read_helper(self):
        request = read(1.0, 5, length=2)
        assert request.is_read and not request.is_write
        assert request.mode is IOMode.READ

    def test_write_helper(self):
        request = write(1.0, 5)
        assert request.is_write and not request.is_read

    def test_source_label(self):
        assert read(0.0, 0, source="wannacry").source == "wannacry"

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            IORequest(time=-1.0, lba=0, mode=IOMode.READ)

    def test_rejects_negative_lba(self):
        with pytest.raises(ValueError):
            IORequest(time=0.0, lba=-1, mode=IOMode.READ)

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            IORequest(time=0.0, lba=0, mode=IOMode.READ, length=0)

    def test_source_not_part_of_equality(self):
        a = read(1.0, 5, source="x")
        b = read(1.0, 5, source="y")
        assert a == b


class TestGeometryOfRequest:
    def test_end_lba(self):
        assert read(0.0, 10, length=4).end_lba == 14

    def test_lbas_enumerates_blocks(self):
        assert list(read(0.0, 10, length=3).lbas()) == [10, 11, 12]

    def test_split_unit_length(self):
        request = read(0.0, 10)
        assert list(request.split()) == [request]

    def test_split_multi_block(self):
        parts = list(write(2.0, 10, length=3).split())
        assert [p.lba for p in parts] == [10, 11, 12]
        assert all(p.length == 1 for p in parts)
        assert all(p.time == 2.0 for p in parts)

    def test_split_preserves_source(self):
        parts = list(write(0.0, 0, length=2, source="app").split())
        assert all(p.source == "app" for p in parts)

    def test_repr_contains_mode(self):
        assert "R" in repr(read(0.0, 1))
        assert "W" in repr(write(0.0, 1))
