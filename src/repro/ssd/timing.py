"""Analytic per-operation latency model (the Fig. 8 reproduction).

Python cannot reproduce firmware nanoseconds, so the overhead experiment
uses an explicit cost model calibrated to the paper's measurements on a
1.2-GHz core: the baseline FTL spends 477 ns per 4-KB read and 1 372 ns per
write, and SSD-Insider's detection/recovery bookkeeping adds ~147 ns and
~254 ns on average.  The insider overhead is decomposed into a fixed hash
probe plus work done only when the probe hits (reads) or when the write is
an overwrite (table update + recovery-queue push), so per-trace overheads
vary with workload behaviour exactly as Fig. 8's bars do.  NAND latencies
(50/500 µs) then dwarf everything, reproducing the paper's "negligible
overhead" conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.blockdev.trace import Trace
from repro.core.config import DetectorConfig
from repro.core.counting_table import CountingTable
from repro.nand.latency import NandLatencies
from repro.units import NS


@dataclass(frozen=True)
class FirmwareCosts:
    """Nanosecond costs of the firmware code paths (1.2-GHz calibration)."""

    #: Baseline FTL: mapping lookup + command handling per 4-KB read.
    ftl_read_ns: float = 477.0
    #: Baseline FTL: mapping update + allocation per 4-KB write.
    ftl_write_ns: float = 1372.0
    #: Insider, read path: counting-table hash probe (always paid).
    insider_read_probe_ns: float = 130.0
    #: Insider, read path: entry create/extend when the probe misses/hits.
    insider_read_update_ns: float = 40.0
    #: Insider, write path: hash probe + slice counters (always paid).
    insider_write_probe_ns: float = 190.0
    #: Insider, write path: WL update + recovery-queue push per overwrite.
    insider_overwrite_ns: float = 130.0


@dataclass(frozen=True)
class TraceProfile:
    """Behavioural rates of a trace that drive the insider's per-op cost."""

    reads: int
    writes: int
    #: Fraction of read blocks that touch an existing counting-table entry.
    read_hit_rate: float
    #: Fraction of written blocks that are overwrites.
    overwrite_rate: float


class LatencyModel:
    """Combines firmware costs with NAND latencies for end-to-end figures."""

    def __init__(
        self,
        costs: Optional[FirmwareCosts] = None,
        nand: Optional[NandLatencies] = None,
    ) -> None:
        self.costs = costs or FirmwareCosts()
        self.nand = nand or NandLatencies()

    # -- per-operation software time (the Fig. 8 bars) -------------------

    def ftl_read_ns(self) -> float:
        """Baseline FTL software time per 4-KB read."""
        return self.costs.ftl_read_ns

    def ftl_write_ns(self) -> float:
        """Baseline FTL software time per 4-KB write."""
        return self.costs.ftl_write_ns

    def insider_read_ns(self, profile: TraceProfile) -> float:
        """Average insider overhead per read for a trace's behaviour."""
        return (
            self.costs.insider_read_probe_ns
            + profile.read_hit_rate * self.costs.insider_read_update_ns
        )

    def insider_write_ns(self, profile: TraceProfile) -> float:
        """Average insider overhead per write for a trace's behaviour."""
        return (
            self.costs.insider_write_probe_ns
            + profile.overwrite_rate * self.costs.insider_overwrite_ns
        )

    # -- end-to-end I/O latency ------------------------------------------

    def read_latency_s(self, profile: TraceProfile) -> float:
        """Full 4-KB read latency including the NAND page read."""
        software_ns = self.ftl_read_ns() + self.insider_read_ns(profile)
        return software_ns * NS + self.nand.page_read

    def write_latency_s(self, profile: TraceProfile) -> float:
        """Full 4-KB write latency including the NAND page program."""
        software_ns = self.ftl_write_ns() + self.insider_write_ns(profile)
        return software_ns * NS + self.nand.page_program

    def insider_read_share(self, profile: TraceProfile) -> float:
        """Insider overhead as a fraction of the full read latency."""
        return self.insider_read_ns(profile) * NS / self.read_latency_s(profile)

    def insider_write_share(self, profile: TraceProfile) -> float:
        """Insider overhead as a fraction of the full write latency."""
        return self.insider_write_ns(profile) * NS / self.write_latency_s(profile)


def profile_trace(trace: Trace, config: Optional[DetectorConfig] = None) -> TraceProfile:
    """Measure a trace's counting-table hit and overwrite rates.

    Replays the trace through a real counting table with the detector's
    slice/window expiry so the rates reflect exactly the work the insider
    code path would do.
    """
    config = config or DetectorConfig()
    table = CountingTable()
    reads = writes = read_hits = overwrites = 0
    current_slice = 0
    for request in trace:
        target = int(request.time // config.slice_duration)
        while current_slice < target:
            current_slice += 1
            table.expire(current_slice - config.window_slices)
        for unit in request.split():
            if unit.is_read:
                reads += 1
                if table.entry_for(unit.lba) is not None:
                    read_hits += 1
                table.record_read(unit.lba, current_slice)
            else:
                writes += 1
                if table.record_write(unit.lba, current_slice):
                    overwrites += 1
    return TraceProfile(
        reads=reads,
        writes=writes,
        read_hit_rate=read_hits / reads if reads else 0.0,
        overwrite_rate=overwrites / writes if writes else 0.0,
    )
