"""Seed derivation determinism and independence."""

from repro.rand import DEFAULT_SEED, derive_rng, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_label_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_seed_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_nesting_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must differ: the separator prevents
        # accidental collisions between label paths.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestRngs:
    def test_make_rng_deterministic(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_derive_rng_streams_differ(self):
        a = derive_rng(7, "x").integers(0, 10**9)
        b = derive_rng(7, "y").integers(0, 10**9)
        assert a != b

    def test_default_seed_stable(self):
        assert DEFAULT_SEED == 20180707
