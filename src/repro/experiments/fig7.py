"""Fig. 7 — detection accuracy (FAR/FRR vs score threshold) per category.

The paper's operating point: threshold 3 gives 0 % FRR in every scenario
and FAR at most ~5 % (only under heavy overwriting).  The reproduction
sweeps thresholds 1..10 over the Table I testing matrix, replaying each
combination with and without the sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.core.config import DetectorConfig
from repro.core.id3 import DecisionTree
from repro.core.pretrained import default_tree
from repro.train.evaluate import AccuracyPoint, evaluate_accuracy
from repro.workloads.catalog import testing_scenarios


@dataclass
class Fig7Result:
    """Per-category FAR/FRR curves."""

    curves: Dict[str, List[AccuracyPoint]]
    repetitions: int
    threshold: int

    def render(self) -> str:
        """Text rendering of the rows/series the paper reports."""
        lines = [
            f"Fig. 7 - FAR/FRR vs score threshold "
            f"({self.repetitions} runs per combination; paper used 20)"
        ]
        for category, points in sorted(self.curves.items()):
            lines.append(f"\n  [{category}]")
            rows = [
                (p.threshold, f"{p.far:.2%}", f"{p.frr:.2%}")
                for p in points
            ]
            lines.append(render_table(("threshold", "FAR", "FRR"), rows))
        point = self.at_threshold()
        lines.append(
            f"\nAt the paper's threshold ({self.threshold}): "
            f"worst FAR {max(p.far for p in point.values()):.2%}, "
            f"worst FRR {max(p.frr for p in point.values()):.2%}"
        )
        return "\n".join(lines)

    def at_threshold(self, threshold: Optional[int] = None) -> Dict[str, AccuracyPoint]:
        """The Fig. 7 data points at one threshold, per category."""
        threshold = threshold if threshold is not None else self.threshold
        selected = {}
        for category, points in self.curves.items():
            for point in points:
                if point.threshold == threshold:
                    selected[category] = point
        return selected


def run(
    repetitions: int = 5,
    seed: int = 11,
    duration: float = 60.0,
    tree: Optional[DecisionTree] = None,
    config: Optional[DetectorConfig] = None,
) -> Fig7Result:
    """Sweep FAR/FRR across thresholds on the testing matrix."""
    config = config or DetectorConfig()
    curves = evaluate_accuracy(
        testing_scenarios(),
        tree or default_tree(),
        thresholds=tuple(range(1, config.window_slices + 1)),
        repetitions=repetitions,
        seed=seed,
        duration=duration,
        config=config,
    )
    return Fig7Result(
        curves=curves, repetitions=repetitions, threshold=config.threshold
    )


if __name__ == "__main__":
    print(run().render())
