"""The counting table of Fig. 3: run-lengths of reads and the overwrites
that follow them.

An :class:`TableEntry` covers one run of consecutively-read LBAs.  ``RL`` is
the run's read length; ``WL`` counts the overwrites that later hit the run.
A write to an LBA counts as an *overwrite* only when the LBA is present in
the table — i.e. it was read within the current detection window (the
paper's footnote 1) — which is exactly the read-encrypt-overwrite signature
of crypto ransomware.

A hash index keyed by LBA gives O(1) access from a request to its entry
(the paper's "hash table consisting of LBAs for keys").  The five update
operations named in Fig. 3(b) — ``NewEntry``, ``UpdateEntryR``,
``SplitEntry``, ``UpdateEntryW``, ``MergeEntry`` — map onto the code paths
of :meth:`CountingTable.record_read` and :meth:`CountingTable.record_write`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Per-structure unit sizes (bytes) from the paper's Table III.
HASH_ENTRY_SIZE_BYTES = 42
TABLE_ENTRY_SIZE_BYTES = 12

#: Longest run a single entry may cover.  Firmware entries are fixed-size,
#: and expiry granularity demands bounded runs: an unbounded run built by a
#: long sequential scan would be kept alive in its entirety by any single
#: read that touches it (the entry's Time field is per run), making blocks
#: look "recently read" ~arbitrarily long after they were scanned.
MAX_RUN_BLOCKS = 64


@dataclass(eq=False)
class TableEntry:
    """One run of consecutively read LBAs and its overwrite count.

    Attributes:
        slice_index: Time slice of the last update (the Fig. 3 ``Time``).
        lba: Starting LBA of the run.
        rl: Read run length — the run covers ``[lba, lba + rl)``.
        wl: Overwrite count accumulated by the run (repeat overwrites of
            one block keep counting; only OWST de-duplicates).
    """

    slice_index: int
    lba: int
    rl: int = 1
    wl: int = 0

    @property
    def end_lba(self) -> int:
        """One past the last LBA covered."""
        return self.lba + self.rl

    def covers(self, lba: int) -> bool:
        """True when ``lba`` lies inside the run."""
        return self.lba <= lba < self.end_lba


class CountingTable:
    """Run-length table + LBA hash index (Fig. 3a)."""

    def __init__(self) -> None:
        self._index: Dict[int, TableEntry] = {}
        self._entries: List[TableEntry] = []

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TableEntry]:
        return iter(self._entries)

    @property
    def hash_entries(self) -> int:
        """LBAs currently indexed (Table III "hash table" population)."""
        return len(self._index)

    def entry_for(self, lba: int) -> Optional[TableEntry]:
        """The entry covering ``lba``, or None."""
        return self._index.get(lba)

    def mean_wl(self) -> float:
        """Average WL over all live entries — the AVGWIO feature source."""
        if not self._entries:
            return 0.0
        return sum(entry.wl for entry in self._entries) / len(self._entries)

    def memory_bytes(self) -> int:
        """DRAM footprint under the paper's Table III unit sizes."""
        return (
            len(self._index) * HASH_ENTRY_SIZE_BYTES
            + len(self._entries) * TABLE_ENTRY_SIZE_BYTES
        )

    # -- updates --------------------------------------------------------

    def record_read(self, lba: int, slice_index: int) -> TableEntry:
        """Fold a unit-length read into the table.

        Paths: refresh an entry that already covers the LBA (UpdateEntryR),
        extend an adjacent run (UpdateEntryR + possible MergeEntry), or
        start a fresh run (NewEntry).
        """
        entry = self._index.get(lba)
        if entry is not None:
            entry.slice_index = slice_index
            return entry

        left = self._index.get(lba - 1) if lba > 0 else None
        if left is not None and left.end_lba == lba and left.rl < MAX_RUN_BLOCKS:
            left.rl += 1
            left.slice_index = slice_index
            self._index[lba] = left
            self._maybe_merge(left, slice_index)
            return left

        right = self._index.get(lba + 1)
        if right is not None and right.lba == lba + 1 and right.rl < MAX_RUN_BLOCKS:
            right.lba = lba
            right.rl += 1
            right.slice_index = slice_index
            self._index[lba] = right
            return right

        entry = TableEntry(slice_index=slice_index, lba=lba)
        self._entries.append(entry)
        self._index[lba] = entry
        return entry

    def record_write(self, lba: int, slice_index: int) -> bool:
        """Fold a unit-length write into the table.

        Returns True when the write is an *overwrite* — the LBA was read
        within the window.  Writes to untracked LBAs leave the table
        unchanged (Algorithm 1 line 10 only counts blocks "already in the
        table").
        """
        entry = self._index.get(lba)
        if entry is None:
            return False
        if entry.wl == 0 and lba > entry.lba:
            # The overwrite starts mid-run: split so the overwritten part
            # heads its own entry and WL measures the contiguous overwrite
            # run-length (SplitEntry).
            entry = self._split(entry, lba)
        entry.wl += 1
        entry.slice_index = slice_index
        return True

    def _split(self, entry: TableEntry, at_lba: int) -> TableEntry:
        """Split ``entry`` so a new entry begins at ``at_lba``."""
        right = TableEntry(
            slice_index=entry.slice_index,
            lba=at_lba,
            rl=entry.end_lba - at_lba,
            wl=0,
        )
        entry.rl = at_lba - entry.lba
        self._entries.append(right)
        for lba in range(right.lba, right.end_lba):
            self._index[lba] = right
        return right

    def _maybe_merge(self, entry: TableEntry, slice_index: int) -> None:
        """Merge ``entry`` with the run starting at its end (MergeEntry).

        Only overwrite-free runs merge; runs that already carry overwrite
        counts stay separate so WL keeps measuring one contiguous episode.
        """
        neighbour = self._index.get(entry.end_lba)
        if (
            neighbour is None
            or neighbour is entry
            or neighbour.lba != entry.end_lba
            or entry.wl != 0
            or neighbour.wl != 0
            or entry.rl + neighbour.rl > MAX_RUN_BLOCKS
        ):
            return
        entry.rl += neighbour.rl
        entry.slice_index = slice_index
        for lba in range(neighbour.lba, neighbour.end_lba):
            self._index[lba] = entry
        self._remove_entry(neighbour, unindex=False)

    # -- expiry --------------------------------------------------------

    def expire(self, oldest_live_slice: int) -> int:
        """Drop entries last touched before ``oldest_live_slice``.

        Called when the window slides (Algorithm 1 line 6).  Returns the
        number of entries dropped.
        """
        stale = [e for e in self._entries if e.slice_index < oldest_live_slice]
        for entry in stale:
            self._remove_entry(entry, unindex=True)
        return len(stale)

    def _remove_entry(self, entry: TableEntry, unindex: bool) -> None:
        if unindex:
            for lba in range(entry.lba, entry.end_lba):
                if self._index.get(lba) is entry:
                    del self._index[lba]
        self._entries.remove(entry)

    def clear(self) -> None:
        """Drop everything (used when the detector resets after recovery)."""
        self._index.clear()
        self._entries.clear()
