"""Fleet-scale simulation: thousands of seeded devices, one harness.

The rest of the repository simulates *one* SSD per run; this package turns
that single-device harness into a population study.  A :class:`FleetPlan`
deterministically expands a fleet seed into N independent device+scenario
runs (:class:`DeviceSpec`), :mod:`repro.fleet.worker` executes one device
end to end (a seeded :class:`~repro.ssd.device.SimulatedSSD` replaying a
Table I scenario), :mod:`repro.fleet.orchestrator` fans the devices out
across a worker-process pool and streams results back, and
:mod:`repro.fleet.report` merges the per-device records into fleet-level
FAR / detection-latency distributions, alarm-storm timelines, and a triage
queue.  Results travel as compact ``ssd-insider.fleetrec/v1`` binary
records (:mod:`repro.fleet.record`) — per-run JSON does not scale to ten
thousand devices.

The whole pipeline is reproducible at every granularity: the fleet file is
bit-identical for any ``--shards`` value, and any single device can be
re-derived and re-run alone from the fleet seed (see ``docs/fleet.md``,
the operator's handbook).
"""

from repro.fleet.orchestrator import (
    FleetRunResult,
    FleetRunSummary,
    run_fleet,
)
from repro.fleet.plan import DeviceSpec, FleetPlan, ScenarioMix
from repro.fleet.record import (
    FLEETREC_SCHEMA,
    decode_value,
    dumps_record,
    encode_value,
    loads_record,
    read_fleet_file,
    write_fleet_file,
)
from repro.fleet.report import (
    aggregate_registry,
    build_report,
    device_registry,
    render_report,
    triage_queue,
)
from repro.fleet.telemetry import (
    TelemetryConfig,
    TelemetrySession,
    write_prometheus,
    write_snapshot_json,
)
from repro.fleet.worker import classify_verdict, run_device, severity_of

__all__ = [
    "DeviceSpec",
    "FLEETREC_SCHEMA",
    "FleetPlan",
    "FleetRunResult",
    "FleetRunSummary",
    "ScenarioMix",
    "TelemetryConfig",
    "TelemetrySession",
    "aggregate_registry",
    "build_report",
    "classify_verdict",
    "decode_value",
    "device_registry",
    "dumps_record",
    "encode_value",
    "loads_record",
    "read_fleet_file",
    "render_report",
    "run_device",
    "run_fleet",
    "severity_of",
    "triage_queue",
    "write_fleet_file",
    "write_prometheus",
    "write_snapshot_json",
]
