"""Device-level faults: detector equivalence, power loss, degradation.

The acceptance bar for the fault subsystem: fault injection defaults
*off*, and attaching it must be invisible to detection — the detector
sees request headers only, so a fault-enabled run (short of a power loss,
which reboots the firmware) produces a bit-identical DetectionEvent
stream.  The golden scenario here is the same one the hot-path
equivalence suite replays against :mod:`repro.core.reference`.
"""

import pytest

from repro.blockdev.request import IOMode, IORequest
from repro.faults.config import FaultConfig
from repro.faults.sweep import run_fault_trial
from repro.nand.geometry import NandGeometry
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.smart import (
    ATTR_BAD_BLOCKS,
    ATTR_CORRECTED_READS,
    ATTR_DEGRADED,
    ATTR_POWER_LOSSES,
    ATTR_UNCORRECTABLE_READS,
    smart_report,
)
from repro.workloads.scenario import Scenario

GOLDEN_SCENARIO = Scenario(
    "golden-cloudstorage-wannacry", ransomware="wannacry", app="cloudstorage",
    category="heavy_overwrite", duration=60.0,
)
GOLDEN_SEED = 20180706


def replay_golden(config):
    """Replay the golden trace through a device; return its event stream."""
    device = SimulatedSSD(config)
    num_lbas = device.num_lbas
    run = GOLDEN_SCENARIO.build(seed=GOLDEN_SEED)
    for request in run.trace:
        lba = request.lba % max(1, num_lbas - request.length)
        device.submit(IORequest(time=request.time, lba=lba, mode=request.mode,
                                length=request.length, source=request.source))
        if device.read_only:
            device.dismiss_alarm()
    return device


def event_stream(device):
    return [
        (e.slice_index, e.time, e.features, e.verdict, e.score, e.alarm)
        for e in device.detector.events
    ]


class TestDetectionEquivalence:
    def test_zero_rate_injector_is_bit_identical(self):
        """Attaching an all-off FaultConfig must not move a single bit of
        the DetectionEvent stream."""
        baseline = replay_golden(SSDConfig.small())
        with_injector = replay_golden(
            SSDConfig.small(faults=FaultConfig())
        )
        assert event_stream(baseline) == event_stream(with_injector)
        assert baseline.stats == with_injector.stats

    def test_media_faults_leave_detection_untouched(self):
        """Read/program/erase faults change latencies and relocations but
        never the header stream the detector scores (the paper's
        detector is deliberately content- and media-blind)."""
        baseline = replay_golden(SSDConfig.small())
        faulty = replay_golden(
            SSDConfig.small(faults=FaultConfig(
                seed=3, read_fault_rate=0.01, read_transient_share=0.5,
                program_fail_rate=1e-6, erase_fail_rate=1e-6,
                factory_bad_blocks=2,
            ))
        )
        assert event_stream(baseline) == event_stream(faulty)
        # ... while the media visibly suffered.
        assert faulty.nand.reliability.corrected_reads > 0

    def test_faults_default_off(self):
        device = SimulatedSSD(SSDConfig.small())
        assert device.fault_injector is None
        assert device.nand.faults is None


class TestPowerLossRecovery:
    def test_mid_attack_power_cut_still_recovers_perfectly(self):
        """The full §V story under a power cut: populate, attack, lose
        power mid-attack, rebuild from OOB, alarm, roll back, audit
        every LBA bit-exact."""
        result = run_fault_trial(0.0, power_loss=True)
        assert result.power_loss_fired
        assert result.alarm_raised and result.alarm_within_window
        assert result.lost_lbas_media == 0
        assert result.lost_lbas_rollback == 0
        assert result.audited_lbas > 0
        assert result.perfect_recovery

    def test_power_loss_fires_on_idle_tick_too(self):
        config = SSDConfig.tiny(
            detector_enabled=False,
            faults=FaultConfig(power_loss_at=5.0),
        )
        device = SimulatedSSD(config)
        device.write(0, b"x", now=1.0)
        assert device.stats.power_losses == 0
        device.tick(6.0)
        assert device.stats.power_losses == 1
        # Data survives the cut (rebuilt from OOB).
        assert device.read(0)[:1] == b"x"

    def test_power_loss_fires_once(self):
        config = SSDConfig.tiny(
            detector_enabled=False,
            faults=FaultConfig(power_loss_at=5.0),
        )
        device = SimulatedSSD(config)
        device.tick(6.0)
        device.tick(7.0)
        device.tick(100.0)
        assert device.stats.power_losses == 1


class TestGracefulDegradation:
    def test_exhausted_program_retries_lock_the_device(self):
        config = SSDConfig.tiny(
            detector_enabled=False,
            faults=FaultConfig(program_fail_rate=1.0),
        )
        device = SimulatedSSD(config)
        device.write(0, b"x", now=1.0)
        assert device.stats.failed_writes == 1
        assert device.degraded
        assert device.read_only

    def test_uncorrectable_read_degrades_without_lockdown(self):
        config = SSDConfig.tiny(
            detector_enabled=False,
            faults=FaultConfig(read_fault_rate=1.0,
                               read_transient_share=0.0,
                               read_hard_share=1.0),
        )
        device = SimulatedSSD(config)
        device.write(0, b"x", now=1.0)
        data = device.read(0)
        assert data == bytes(len(data))  # zero-filled sentinel
        assert device.stats.uncorrectable_reads == 1
        assert device.degraded
        assert not device.read_only  # reads keep flowing; host decides

    def test_power_cycle_clears_the_degraded_latch(self):
        config = SSDConfig.tiny(
            detector_enabled=False,
            faults=FaultConfig(read_fault_rate=1.0, read_hard_share=1.0,
                               read_transient_share=0.0),
        )
        device = SimulatedSSD(config)
        device.write(0, b"x", now=1.0)
        device.read(0)
        assert device.degraded
        device.power_cycle()
        assert not device.degraded


class TestSmartReliabilityAttributes:
    def test_report_carries_media_health(self):
        config = SSDConfig.tiny(
            detector_enabled=False,
            faults=FaultConfig(read_fault_rate=1.0,
                               read_transient_share=1.0,
                               read_hard_share=0.0),
        )
        device = SimulatedSSD(config)
        device.write(0, b"x", now=1.0)
        device.read(0)
        report = smart_report(device)
        assert report[ATTR_CORRECTED_READS] >= 1
        assert report[ATTR_UNCORRECTABLE_READS] == 0
        assert report[ATTR_BAD_BLOCKS] == 0
        assert report[ATTR_POWER_LOSSES] == 0
        assert report[ATTR_DEGRADED] == 0
