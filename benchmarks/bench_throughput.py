"""Device-level throughput: the Fig. 8 conclusion at bandwidth scale."""

from repro.analysis.report import render_table
from repro.blockdev.request import read, write
from repro.blockdev.trace import Trace
from repro.nand.geometry import NandGeometry
from repro.ssd.throughput import peak_bandwidth_mib, simulate_throughput


def _sequential(blocks: int, mode: str) -> Trace:
    maker = read if mode == "read" else write
    return Trace(maker(i * 1e-6, i * 8, length=8) for i in range(blocks // 8))


def test_device_bandwidth_with_and_without_insider(benchmark, publish):
    geometry = NandGeometry(channels=4, ways=4, blocks_per_chip=64,
                            pages_per_block=64)

    def measure():
        rows = []
        for mode in ("read", "write"):
            trace = _sequential(32_768, mode)
            with_insider = simulate_throughput(trace, geometry,
                                               insider_enabled=True)
            without = simulate_throughput(trace, geometry,
                                          insider_enabled=False)
            mib_with = (with_insider.read_mib_per_s if mode == "read"
                        else with_insider.write_mib_per_s)
            mib_without = (without.read_mib_per_s if mode == "read"
                           else without.write_mib_per_s)
            rows.append((mode, mib_without, mib_with,
                         1.0 - mib_with / mib_without))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "\n".join(
        [
            "Device bandwidth (16-chip array), baseline FTL vs +SSD-Insider:",
            render_table(
                ("pattern", "baseline MiB/s", "insider MiB/s", "slowdown"),
                [(m, f"{a:.0f}", f"{b:.0f}", f"{s:.3%}") for m, a, b, s in rows],
            ),
            f"theoretical read peak: "
            f"{peak_bandwidth_mib(geometry):.0f} MiB/s",
        ]
    )
    publish("throughput", text)
    for _, _, _, slowdown in rows:
        assert 0.0 <= slowdown < 0.01  # < 1% — "negligible" holds
