"""Defrag and anti-virus: the extra §III-A workloads must stay benign."""

import pytest

from repro.blockdev.trace import Trace
from repro.train.evaluate import evaluate_run
from repro.workloads.apps import APP_REGISTRY, make_app
from repro.workloads.base import LbaRegion
from repro.workloads.scenario import Scenario

REGION = LbaRegion(0, 50_000)


class TestDefrag:
    def test_registered_as_heavy_overwrite(self):
        assert APP_REGISTRY["defrag"].category == "heavy_overwrite"

    def test_long_run_requests(self):
        trace = Trace(make_app("defrag", REGION, duration=15.0,
                               seed=1).requests())
        writes = [r for r in trace if r.is_write]
        assert writes
        assert sum(r.length for r in writes) / len(writes) >= 8

    def test_overwrites_previously_read_blocks(self):
        """The compaction target was read earlier in the pass — genuine
        overwrites by the detector's definition."""
        trace = Trace(make_app("defrag", REGION, duration=15.0,
                               seed=1).requests())
        read = set()
        overwrites = 0
        for request in trace:
            for unit in request.split():
                if unit.is_read:
                    read.add(unit.lba)
                elif unit.lba in read:
                    overwrites += 1
        assert overwrites > 500

    def test_header_only_detector_false_alarms(self, pretrained_tree):
        """Defragmentation is NOT in the paper's Table I; against the
        catalog-trained header-only tree it is a genuine false-alarm
        source (sustained, long, read-then-overwrite runs).  Documented
        as a known limitation — and the motivation for the entropy
        extension, which suppresses it (see test below)."""
        run = Scenario("defrag-only", app="defrag").build(
            seed=5, duration=45.0
        )
        outcome = evaluate_run(run, pretrained_tree)
        assert outcome.alarmed_at(3)

    def test_entropy_gate_suppresses_defrag_false_alarm(self, pretrained_tree):
        """A defragmenter rewrites blocks with their *original* (low
        entropy) content; the content-aware hybrid therefore vetoes the
        header verdicts the plain tree raises."""
        from repro.core.entropy import HybridDetector
        from repro.ssd.config import SSDConfig
        from repro.ssd.device import SimulatedSSD

        hybrid = HybridDetector(pretrained_tree)
        ssd = SimulatedSSD(SSDConfig.small(), tree=hybrid)
        payload = b"user document content " * 100
        for lba in range(4000):
            ssd.write(lba, payload, now=0.002 * lba)
        ssd.tick(30.0)
        # Defragment: read a long run, rewrite it compacted (the same
        # low-entropy content lands back on the just-read blocks).
        now = 30.0
        for start in range(0, 3600, 120):
            for lba in range(start, start + 120):
                ssd.read(lba, now=now)
                now += 0.0008
            for lba in range(start, start + 120):
                ssd.write(lba, payload, now=now)
                now += 0.0008
        ssd.tick(now + 2.0)
        assert not ssd.alarm_raised
        assert hybrid.suppressed > 0


class TestAntivirus:
    def test_read_dominated(self):
        stats = Trace(make_app("antivirus", REGION, duration=15.0,
                               seed=1).requests()).stats()
        assert stats.blocks_read > 50 * max(1, stats.blocks_written)

    def test_no_false_alarm_at_operating_point(self, pretrained_tree):
        run = Scenario("av-only", app="antivirus").build(
            seed=5, duration=45.0
        )
        outcome = evaluate_run(run, pretrained_tree)
        assert not outcome.alarmed_at(3)

    def test_ransomware_still_detected_under_av_scan(self, pretrained_tree):
        """A full-disk scan is heavy read noise; the sample must still be
        caught through it."""
        run = Scenario("av-attack", ransomware="wannacry",
                       app="antivirus").build(seed=6, duration=60.0)
        outcome = evaluate_run(run, pretrained_tree)
        assert outcome.detected_at(3)
