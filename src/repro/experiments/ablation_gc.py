"""GC-policy ablation: what does victim selection cost the Insider FTL?

DESIGN.md commits to the paper's greedy baseline; this ablation replays a
write-heavy trace against all three victim policies (greedy, cost-benefit,
wear-aware), for both the conventional and the Insider FTL, reporting page
copies, erases, and the wear spread — the quantities each policy trades
against the others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import render_table
from repro.experiments.fig9 import replay
from repro.ftl.conventional import ConventionalFTL
from repro.ftl.gc import GcPolicy
from repro.ftl.insider import InsiderFTL
from repro.ftl.victim import VictimPolicy
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.rand import derive_seed
from repro.workloads.scenario import Scenario


@dataclass
class GcAblationRow:
    """One (FTL, policy) combination."""

    ftl: str
    policy: str
    gc_copies: int
    erases: int
    wear_spread: int
    write_amplification: float


@dataclass
class GcAblationResult:
    """All combinations over the same trace."""

    rows: List[GcAblationRow]
    utilization: float

    def render(self) -> str:
        """Text rendering of the rows/series the paper reports."""
        table_rows = [
            (row.ftl, row.policy, row.gc_copies, row.erases,
             row.wear_spread, f"{row.write_amplification:.2f}")
            for row in self.rows
        ]
        return "\n".join(
            [
                f"GC victim-policy ablation at {self.utilization:.0%} fill "
                "(ransomware-heavy trace)",
                render_table(
                    ("ftl", "policy", "gc copies", "erases", "wear spread",
                     "WAF"),
                    table_rows,
                ),
            ]
        )

    def row(self, ftl: str, policy: str) -> GcAblationRow:
        """Find one combination."""
        for candidate in self.rows:
            if candidate.ftl == ftl and candidate.policy == policy:
                return candidate
        raise KeyError((ftl, policy))


def run(
    utilization: float = 0.85,
    seed: int = 0,
    duration: float = 40.0,
    geometry: Optional[NandGeometry] = None,
) -> GcAblationResult:
    """Replay one overwrite-heavy scenario under every policy."""
    geometry = geometry or NandGeometry(channels=2, ways=2, blocks_per_chip=96,
                                        pages_per_block=64)
    num_lbas = int(geometry.pages_total * (1.0 - 0.125))
    scenario = Scenario("gc-ablation", ransomware="wannacry", app="database")
    scenario_run = scenario.build(
        seed=derive_seed(seed, "gc-ablation"), num_lbas=num_lbas,
        duration=duration,
    )
    prefill = int(num_lbas * utilization)
    rows: List[GcAblationRow] = []
    for policy in VictimPolicy:
        gc_policy = GcPolicy(victim_policy=policy)
        for label, factory in (
            ("conventional",
             lambda: ConventionalFTL(NandArray(geometry),
                                     gc_policy=gc_policy)),
            ("insider",
             lambda: InsiderFTL(
                 NandArray(geometry), gc_policy=gc_policy,
                 queue_capacity=max(1, int(geometry.pages_total * 0.02)),
             )),
        ):
            ftl = factory()
            replay(scenario_run.trace, ftl, prefill)
            wear = ftl.nand.wear_stats()
            rows.append(
                GcAblationRow(
                    ftl=label,
                    policy=policy.value,
                    gc_copies=ftl.stats.gc_page_copies,
                    erases=ftl.stats.erases,
                    wear_spread=wear.spread,
                    write_amplification=ftl.stats.write_amplification,
                )
            )
    return GcAblationResult(rows=rows, utilization=utilization)


if __name__ == "__main__":
    print(run().render())
