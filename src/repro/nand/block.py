"""Erase block model.

A block enforces the two NAND rules the FTL must design around:

* pages are programmed sequentially within a block and never reprogrammed
  without an erase (out-of-place update), and
* an erase wipes the whole block at once (delayed deletion of old data).

Each page carries opaque payload plus out-of-band (OOB) metadata — the LBA it
was written for and the write timestamp — which real FTLs also store in the
page spare area and which the recovery path uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import EraseError, ProgramError, ReadError


class PageState(enum.Enum):
    """Lifecycle of a physical page."""

    FREE = "free"        #: erased, programmable
    VALID = "valid"      #: holds the live copy of some LBA
    INVALID = "invalid"  #: superseded by a newer write; awaiting erase


@dataclass
class PageInfo:
    """Out-of-band metadata for one physical page."""

    state: PageState = PageState.FREE
    lba: Optional[int] = None
    written_at: float = 0.0
    payload: Optional[bytes] = None


@dataclass
class Block:
    """One erase block: a write pointer over ``num_pages`` pages."""

    num_pages: int
    pages: List[PageInfo] = field(default_factory=list)
    write_pointer: int = 0
    erase_count: int = 0
    valid_count: int = 0
    #: Worn-out flag: set when an erase fails; the FTL retires the block.
    is_bad: bool = False
    #: Fault injection: the next erase attempt fails and marks the block
    #: bad (how real blocks die — erase/program verify errors).
    fail_next_erase: bool = False
    #: Reads served since the last erase.  NAND cells leak charge under
    #: repeated reads of neighbouring pages (read disturb); firmware must
    #: rewrite ("scrub") a block before the count crosses the chip's
    #: tolerated limit.
    reads_since_erase: int = 0

    def __post_init__(self) -> None:
        if not self.pages:
            self.pages = [PageInfo() for _ in range(self.num_pages)]

    @property
    def is_full(self) -> bool:
        """True when every page has been programmed since the last erase."""
        return self.write_pointer >= self.num_pages

    @property
    def is_empty(self) -> bool:
        """True when the block is fully erased (nothing programmed)."""
        return self.write_pointer == 0

    @property
    def free_pages(self) -> int:
        """Programmable pages remaining."""
        return self.num_pages - self.write_pointer

    @property
    def invalid_count(self) -> int:
        """Programmed pages that no longer hold live data."""
        return self.write_pointer - self.valid_count

    def program(self, lba: int, timestamp: float, payload: Optional[bytes] = None) -> int:
        """Program the next page; returns the page index within the block."""
        if self.is_bad:
            raise ProgramError("block is marked bad")
        if self.is_full:
            raise ProgramError(f"block full ({self.num_pages} pages programmed)")
        index = self.write_pointer
        page = self.pages[index]
        page.state = PageState.VALID
        page.lba = lba
        page.written_at = timestamp
        page.payload = payload
        self.write_pointer += 1
        self.valid_count += 1
        return index

    def read(self, page_index: int) -> PageInfo:
        """Read a programmed page's metadata/payload."""
        if not (0 <= page_index < self.num_pages):
            raise ReadError(f"page {page_index} out of range [0, {self.num_pages})")
        page = self.pages[page_index]
        if page.state is PageState.FREE:
            raise ReadError(f"page {page_index} has not been programmed")
        self.reads_since_erase += 1
        return page

    def burn(self, page_index: int) -> None:
        """Write off a just-programmed page whose program verify failed.

        The page is consumed (the write pointer stays advanced — NAND
        cannot reprogram it without an erase) but holds garbage: it is
        marked INVALID with its out-of-band record cleared, so neither
        reads nor a power-loss rebuild will ever trust it.
        """
        page = self.pages[page_index]
        if page.state is not PageState.VALID:
            raise ProgramError(
                f"cannot burn page {page_index} in state {page.state.value}"
            )
        page.state = PageState.INVALID
        page.lba = None
        page.written_at = 0.0
        page.payload = None
        self.valid_count -= 1

    def mark_bad(self) -> None:
        """Permanently flag the block bad (factory map-out or grown)."""
        self.is_bad = True

    def invalidate(self, page_index: int) -> None:
        """Mark a valid page as superseded."""
        page = self.pages[page_index]
        if page.state is not PageState.VALID:
            raise ProgramError(
                f"cannot invalidate page {page_index} in state {page.state.value}"
            )
        page.state = PageState.INVALID
        self.valid_count -= 1

    def revalidate(self, page_index: int) -> None:
        """Bring an invalid page back to VALID (rollback restoring it).

        The inverse of :meth:`invalidate`: rollback re-points a mapping
        entry at a superseded old version, which makes that physical page
        the live copy again.  A FREE page cannot be revalidated — the old
        version would have been erased, which pinning exists to prevent.
        """
        page = self.pages[page_index]
        if page.state is PageState.VALID:
            return
        if page.state is PageState.FREE:
            raise ProgramError(
                f"cannot revalidate page {page_index}: it was erased"
            )
        page.state = PageState.VALID
        self.valid_count += 1

    def erase(self) -> None:
        """Erase the whole block, freeing every page.

        Erasing a block that still holds valid pages is an FTL bug, so it is
        rejected here rather than silently losing data.  A block whose
        erase fails (wear-out) raises and becomes permanently bad.
        """
        if self.valid_count > 0:
            raise EraseError(f"block still holds {self.valid_count} valid pages")
        if self.is_bad:
            raise EraseError("block is marked bad")
        if self.fail_next_erase:
            self.fail_next_erase = False
            self.is_bad = True
            raise EraseError("erase verify failed; block has worn out")
        for page in self.pages:
            page.state = PageState.FREE
            page.lba = None
            page.written_at = 0.0
            page.payload = None
        self.write_pointer = 0
        self.erase_count += 1
        self.reads_since_erase = 0
