"""Fig. 9 — GC cost: conventional SSD vs SSD-Insider.

The Insider FTL must relocate invalid pages the recovery queue still pins,
so garbage collection copies more pages.  The paper measured ~22 % extra
copies in the worst case (90 % space utilisation) and ~0 % extra at 70 %.
The reproduction replays each testing trace against both FTLs on identical
devices pre-filled to the target utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import render_table
from repro.blockdev.trace import Trace
from repro.ftl.conventional import ConventionalFTL
from repro.ftl.insider import InsiderFTL
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.rand import derive_seed
from repro.workloads.catalog import testing_scenarios
from repro.workloads.scenario import Scenario


@dataclass
class Fig9Row:
    """One trace's GC page-copy counts under both FTLs."""

    trace: str
    conventional_copies: int
    insider_copies: int
    pinned_copies: int

    @property
    def overhead(self) -> float:
        """Extra copies of the Insider FTL relative to the baseline."""
        if self.conventional_copies == 0:
            return 0.0 if self.insider_copies == 0 else float("inf")
        return self.insider_copies / self.conventional_copies - 1.0


@dataclass
class Fig9Result:
    """All traces at one utilisation level."""

    utilization: float
    rows: List[Fig9Row]

    def render(self) -> str:
        """Text rendering of the rows/series the paper reports."""
        table_rows = [
            (
                row.trace,
                row.conventional_copies,
                row.insider_copies,
                row.pinned_copies,
                "n/a" if row.overhead == float("inf") else f"{row.overhead:+.1%}",
            )
            for row in self.rows
        ]
        total_conventional = sum(r.conventional_copies for r in self.rows)
        total_insider = sum(r.insider_copies for r in self.rows)
        overall = (
            total_insider / total_conventional - 1.0 if total_conventional else 0.0
        )
        return "\n".join(
            [
                f"Fig. 9 - GC page copies at {self.utilization:.0%} utilisation",
                render_table(
                    ("trace", "conventional", "ssd-insider", "pinned copies",
                     "overhead"),
                    table_rows,
                ),
                f"aggregate extra copies: {overall:+.1%} "
                f"(paper: ~+22% at 90%, ~0% at 70%)",
            ]
        )


def replay(
    trace: Trace,
    ftl,
    prefill_lbas: int,
) -> None:
    """Pre-fill the device and push every trace block through the FTL.

    Prefill writes carry an ancient timestamp so their recovery-queue
    entries are already outside the retention window when the trace
    starts — the pre-existing data is "old and safe", exactly the state a
    long-running device would be in.
    """
    for lba in range(prefill_lbas):
        ftl.write(lba, timestamp=-1e6)
    baseline = ftl.stats.snapshot()
    ftl.stats.gc_page_copies -= baseline.gc_page_copies
    ftl.stats.gc_pinned_copies -= baseline.gc_pinned_copies
    ftl.stats.erases -= baseline.erases
    ftl.stats.gc_runs -= baseline.gc_runs
    offset = 1.0  # keep trace timestamps after the prefill
    for request in trace:
        for unit in request.split():
            lba = unit.lba % ftl.num_lbas
            if unit.is_read:
                if ftl.mapping.is_mapped(lba):
                    ftl.read(lba, unit.time + offset)
            else:
                ftl.write(lba, unit.time + offset)


def run(
    utilization: float = 0.9,
    seed: int = 0,
    duration: float = 45.0,
    geometry: Optional[NandGeometry] = None,
    scenarios=None,
) -> Fig9Result:
    """Replay the testing traces against both FTLs."""
    geometry = geometry or NandGeometry(
        channels=2, ways=4, blocks_per_chip=128, pages_per_block=64
    )
    rows: List[Fig9Row] = []
    chosen = list(scenarios) if scenarios is not None else testing_scenarios()
    for scenario in chosen:
        num_lbas = int(geometry.pages_total * (1.0 - 0.125))
        run_seed = derive_seed(seed, "fig9", scenario.name)
        scenario_run = scenario.build(
            seed=run_seed, num_lbas=num_lbas, duration=duration
        )
        prefill = int(num_lbas * utilization)
        conventional = ConventionalFTL(NandArray(geometry))
        replay(scenario_run.trace, conventional, prefill)
        # Provision the recovery queue at the paper's ratio: Table III's
        # 2,621,440 x 4-KB entries are ~2% of the 512-GB prototype, so the
        # pinned old versions raise effective utilisation by at most ~2
        # points — which is what keeps the worst-case GC overhead near the
        # paper's +22% instead of exploding as the device fills.
        queue_capacity = max(1, int(geometry.pages_total * 0.02))
        insider = InsiderFTL(NandArray(geometry), queue_capacity=queue_capacity)
        replay(scenario_run.trace, insider, prefill)
        rows.append(
            Fig9Row(
                trace=scenario.name.replace("test-", ""),
                conventional_copies=conventional.stats.gc_page_copies,
                insider_copies=insider.stats.gc_page_copies,
                pinned_copies=insider.stats.gc_pinned_copies,
            )
        )
    return Fig9Result(utilization=utilization, rows=rows)


if __name__ == "__main__":
    print(run().render())
