"""Fig. 8 — per-operation software latency: baseline FTL vs +SSD-Insider.

The paper measured, on a 1.2-GHz core, 477 ns / 1372 ns of FTL code per
4-KB read/write and an extra 147 ns / 254 ns for SSD-Insider's
detection/recovery bookkeeping — negligible against 50/500 µs NAND
latencies.  The reproduction drives the analytic cost model with each
testing trace's measured behaviour (counting-table hit rate, overwrite
rate), so the per-trace bars vary with workload just as the figure's do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import render_table
from repro.rand import derive_seed
from repro.ssd.timing import LatencyModel, TraceProfile, profile_trace
from repro.workloads.catalog import testing_scenarios


@dataclass
class Fig8Row:
    """One trace's latency decomposition (nanoseconds)."""

    trace: str
    ftl_read_ns: float
    insider_read_ns: float
    ftl_write_ns: float
    insider_write_ns: float
    read_share: float
    write_share: float


@dataclass
class Fig8Result:
    """All traces plus the cross-trace averages."""

    rows: List[Fig8Row]
    avg_insider_read_ns: float
    avg_insider_write_ns: float

    def render(self) -> str:
        """Text rendering of the rows/series the paper reports."""
        table_rows = [
            (
                row.trace,
                f"{row.ftl_read_ns:.0f}",
                f"+{row.insider_read_ns:.0f}",
                f"{row.ftl_write_ns:.0f}",
                f"+{row.insider_write_ns:.0f}",
                f"{row.read_share:.2%}",
                f"{row.write_share:.2%}",
            )
            for row in self.rows
        ]
        return "\n".join(
            [
                "Fig. 8 - software elapsed time per 4-KB op (ns), and the insider",
                "overhead's share of the full I/O including NAND latency:",
                render_table(
                    ("trace", "FTL rd", "insider rd", "FTL wr", "insider wr",
                     "rd share", "wr share"),
                    table_rows,
                ),
                f"average insider overhead: {self.avg_insider_read_ns:.0f} ns reads, "
                f"{self.avg_insider_write_ns:.0f} ns writes "
                f"(paper: 147 ns / 254 ns)",
            ]
        )


def run(seed: int = 0, duration: float = 40.0,
        model: Optional[LatencyModel] = None) -> Fig8Result:
    """Profile every testing trace through the latency model."""
    model = model or LatencyModel()
    rows: List[Fig8Row] = []
    for scenario in testing_scenarios():
        run_seed = derive_seed(seed, "fig8", scenario.name)
        scenario_run = scenario.build(seed=run_seed, duration=duration)
        profile = profile_trace(scenario_run.trace)
        rows.append(
            Fig8Row(
                trace=scenario.name.replace("test-", ""),
                ftl_read_ns=model.ftl_read_ns(),
                insider_read_ns=model.insider_read_ns(profile),
                ftl_write_ns=model.ftl_write_ns(),
                insider_write_ns=model.insider_write_ns(profile),
                read_share=model.insider_read_share(profile),
                write_share=model.insider_write_share(profile),
            )
        )
    avg_read = sum(r.insider_read_ns for r in rows) / len(rows)
    avg_write = sum(r.insider_write_ns for r in rows) / len(rows)
    return Fig8Result(rows=rows, avg_insider_read_ns=avg_read,
                      avg_insider_write_ns=avg_write)


if __name__ == "__main__":
    print(run().render())
