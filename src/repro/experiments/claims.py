"""§V headline claims: detection within 10 s, recovery within 1 s, 0 % loss.

The abstract's three quantitative promises, measured end to end on the
simulated device:

* **detection latency** — seconds from attack onset to alarm, across the
  testing matrix;
* **recovery time** — modelled firmware time of the rollback (mapping
  entry updates only; the paper completes it "within 1 second") plus the
  wall-clock time of our implementation;
* **data loss** — blocks whose pre-attack content is not restored bit-
  exact after rollback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import render_table
from repro.core.id3 import DecisionTree
from repro.core.pretrained import default_tree
from repro.nand.geometry import NandGeometry
from repro.obs.tracer import EventTracer
from repro.rand import derive_rng, derive_seed
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD
from repro.train.evaluate import evaluate_run
from repro.units import NS
from repro.workloads.base import LbaRegion
from repro.workloads.catalog import testing_scenarios
from repro.workloads.ransomware.profiles import make_ransomware

#: Modelled firmware cost of one rollback mapping update (DRAM write +
#: bookkeeping); used to convert entries applied into recovery seconds.
ROLLBACK_ENTRY_COST_S = 100 * NS


@dataclass
class ClaimsResult:
    """Measured values for the three claims."""

    detection_latencies: List[float]
    missed_detections: int
    recovery_entries: int
    recovery_model_seconds: float
    recovery_wall_seconds: float
    blocks_checked: int
    blocks_lost: int

    def render(self) -> str:
        """Text rendering of the rows/series the paper reports."""
        lat = self.detection_latencies
        rows = [
            ("detection latency (mean)", f"{sum(lat)/len(lat):.1f} s", "< 10 s"),
            ("detection latency (max)", f"{max(lat):.1f} s", "< 10 s"),
            ("missed detections", str(self.missed_detections), "0"),
            ("rollback mapping updates", f"{self.recovery_entries:,}", "-"),
            ("recovery time (modelled)", f"{self.recovery_model_seconds*1000:.2f} ms", "< 1 s"),
            ("recovery time (wall clock)", f"{self.recovery_wall_seconds*1000:.2f} ms", "< 1 s"),
            ("data loss", f"{self.blocks_lost}/{self.blocks_checked} blocks", "0%"),
        ]
        return "\n".join(
            [
                "SS V headline claims",
                render_table(("claim", "measured", "paper"), rows),
            ]
        )


def run(
    seed: int = 0,
    repetitions: int = 3,
    duration: float = 60.0,
    tree: Optional[DecisionTree] = None,
) -> ClaimsResult:
    """Measure all three claims."""
    tree = tree or default_tree()
    latencies: List[float] = []
    missed = 0
    for scenario in testing_scenarios():
        for repetition in range(repetitions):
            run_seed = derive_seed(seed, "claims", scenario.name, str(repetition))
            scenario_run = scenario.build(seed=run_seed, duration=duration)
            outcome = evaluate_run(scenario_run, tree)
            latency = outcome.detection_latency(3)
            if latency is None:
                missed += 1
            else:
                latencies.append(latency)

    # Recovery: attack a populated device, roll back, audit every block.
    config = SSDConfig(
        geometry=NandGeometry(channels=2, ways=4, blocks_per_chip=128,
                              pages_per_block=64)
    )
    device = SimulatedSSD(config, tree=tree)
    rng = derive_rng(seed, "claims-data")
    populated = min(device.num_lbas // 2, 24_000)
    contents = {}
    for lba in range(populated):
        payload = bytes([int(rng.integers(0, 256))]) * 16
        device.write(lba, payload, now=0.0005 * lba)
        contents[lba] = payload
    device.tick(device.clock.now + 15.0)
    attack = make_ransomware(
        "inhouse-inplace",
        LbaRegion(0, populated),
        start=device.clock.now,
        duration=duration,
        seed=derive_seed(seed, "claims-attack"),
    )
    for request in attack.requests():
        device.submit(request)
        if device.alarm_raised:
            break
    tracer = EventTracer(clock=device.clock)
    with tracer.span("claims.rollback", category="recovery"):
        report = device.recover()
    wall = tracer.find("claims.rollback")[0].wall_duration_s
    lost = sum(
        1 for lba, payload in contents.items() if device.read(lba)[:16] != payload
    )
    return ClaimsResult(
        detection_latencies=latencies,
        missed_detections=missed,
        recovery_entries=report.mapping_updates,
        recovery_model_seconds=report.mapping_updates * ROLLBACK_ENTRY_COST_S,
        recovery_wall_seconds=wall,
        blocks_checked=len(contents),
        blocks_lost=lost,
    )


if __name__ == "__main__":
    print(run().render())
