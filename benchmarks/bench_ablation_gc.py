"""Ablation — GC victim policies under the Insider FTL's pinned pages."""

from repro.experiments import ablation_gc


def test_gc_policy_ablation(benchmark, publish):
    result = benchmark.pedantic(
        lambda: ablation_gc.run(utilization=0.85, seed=2, duration=35.0),
        rounds=1, iterations=1,
    )
    publish("ablation_gc", result.render())
    # Six combinations: {conventional, insider} x 3 policies.
    assert len(result.rows) == 6
    for policy in ("greedy", "wear_aware"):
        conventional = result.row("conventional", policy)
        insider = result.row("insider", policy)
        # Under space-greedy policies, delayed deletion costs copies.
        assert insider.gc_copies >= conventional.gc_copies, policy
        assert conventional.write_amplification >= 1.0
    # Cost-benefit weighs age over space, so the two FTLs diverge in
    # victim choice and strict ordering no longer holds — but the pinned
    # surcharge stays bounded (within a few percent either way).
    cb_conventional = result.row("conventional", "cost_benefit")
    cb_insider = result.row("insider", "cost_benefit")
    assert cb_insider.gc_copies >= cb_conventional.gc_copies * 0.9
    # Cost-benefit's age weighting costs far more copies on a hot trace
    # than greedy does — the reason the paper's baseline is greedy.
    assert cb_conventional.gc_copies > result.row(
        "conventional", "greedy"
    ).gc_copies
