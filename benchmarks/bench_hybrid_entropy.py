"""Extension study — the entropy-gated hybrid detector (SSD-Insider++).

Three measurements on live devices: (1) the header-only tree false-alarms
on an in-place defragmentation pass (a workload outside Table I);
(2) the hybrid suppresses it (defrag rewrites low-entropy user content);
(3) the same hybrid still catches a real ciphertext-writing attack.
"""

from repro.analysis.report import render_table
from repro.core.entropy import HybridDetector
from repro.fs.ransomfs import encrypt
from repro.nand.geometry import NandGeometry
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD

USER_CONTENT = b"Meeting notes, action items, budget table. " * 100


def build_device(tree) -> SimulatedSSD:
    config = SSDConfig(
        geometry=NandGeometry(channels=2, ways=4, blocks_per_chip=128,
                              pages_per_block=64),
        queue_capacity=6_000,
    )
    ssd = SimulatedSSD(config, tree=tree)
    for lba in range(4_000):
        ssd.write(lba, USER_CONTENT, now=0.002 * lba)
    ssd.tick(30.0)
    return ssd


def drive(ssd: SimulatedSSD, payload: bytes) -> None:
    now = 30.0
    for base in range(0, 3_480, 120):
        if ssd.alarm_raised:
            break
        for lba in range(base, base + 120):
            ssd.read(lba, now=now)
            now += 0.0008
        for lba in range(base, base + 120):
            ssd.write(lba, payload, now=now)
            now += 0.0008
    ssd.tick(now + 2.0)


def test_hybrid_entropy_gate(benchmark, publish, pretrained_tree):
    def experiment():
        header_only = build_device(pretrained_tree)
        drive(header_only, USER_CONTENT)

        hybrid = HybridDetector(pretrained_tree)
        gated = build_device(hybrid)
        drive(gated, USER_CONTENT)

        hybrid_attacked = HybridDetector(pretrained_tree)
        attacked = build_device(hybrid_attacked)
        drive(attacked, encrypt(USER_CONTENT, b"k" * 32))
        return {
            "header_only_false_alarm": header_only.alarm_raised,
            "hybrid_false_alarm": gated.alarm_raised,
            "hybrid_suppressed": hybrid.suppressed,
            "hybrid_detects_attack": attacked.alarm_raised,
        }

    outcome = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = "\n".join(
        [
            "Entropy-gated hybrid vs header-only (defrag workload + attack):",
            render_table(
                ("measurement", "value"),
                [
                    ("header-only false alarm on defrag",
                     outcome["header_only_false_alarm"]),
                    ("hybrid false alarm on defrag",
                     outcome["hybrid_false_alarm"]),
                    ("hybrid low-entropy vetoes",
                     outcome["hybrid_suppressed"]),
                    ("hybrid detects real attack",
                     outcome["hybrid_detects_attack"]),
                ],
            ),
        ]
    )
    publish("hybrid_entropy", text)
    assert outcome["header_only_false_alarm"] is True
    assert outcome["hybrid_false_alarm"] is False
    assert outcome["hybrid_suppressed"] > 0
    assert outcome["hybrid_detects_attack"] is True
