"""The deterministic fault injector the NAND array consults.

The injector owns independent, seed-derived RNG streams for reads,
programs and erases, so enabling one fault class never perturbs the
decision sequence of another — exactly the property the workload
generators already rely on (:mod:`repro.rand`).  Every decision is made
once, up front: a faulty read's full severity (in-line correctable,
transient needing *k* retries, or hard) is drawn in a single step, so the
firmware's retry loop replays deterministically no matter how it is
structured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.faults.config import FaultConfig
from repro.rand import derive_rng


@dataclass(frozen=True)
class ReadFault:
    """One faulty read, fully decided at injection time.

    Attributes:
        ppa: The flat physical page address that was read.
        retries_needed: ECC read retries required before the data
            corrects; 0 means the in-line ECC fixes it with no retry.
        hard: True when no number of retries will ever recover the page.
    """

    ppa: int
    retries_needed: int = 0
    hard: bool = False


@dataclass
class FaultStats:
    """How many faults the injector has actually fired, by class."""

    read_faults: int = 0
    read_faults_transient: int = 0
    read_faults_hard: int = 0
    program_fails: int = 0
    erase_fails: int = 0
    power_losses: int = 0

    @property
    def total_media_faults(self) -> int:
        """All per-operation faults injected so far."""
        return self.read_faults + self.program_fails + self.erase_fails

    def as_dict(self) -> dict:
        """JSON-ready counters (incident bundles, sweep reports)."""
        return {
            "read_faults": self.read_faults,
            "read_faults_transient": self.read_faults_transient,
            "read_faults_hard": self.read_faults_hard,
            "program_fails": self.program_fails,
            "erase_fails": self.erase_fails,
            "power_losses": self.power_losses,
            "total_media_faults": self.total_media_faults,
        }


class FaultInjector:
    """Seed-driven fault source consulted on every NAND operation.

    Args:
        config: Rates and shapes; see :class:`~repro.faults.config.FaultConfig`.

    The injector is intentionally stateless about the device — it knows
    nothing of blocks or mappings beyond the addresses it is asked about —
    so the same injector drives a bare :class:`~repro.nand.array.NandArray`
    or a whole :class:`~repro.ssd.device.SimulatedSSD` identically.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.stats = FaultStats()
        self._read_rng = derive_rng(config.seed, "faults", "read")
        self._program_rng = derive_rng(config.seed, "faults", "program")
        self._erase_rng = derive_rng(config.seed, "faults", "erase")
        self._power_loss_fired = False

    # -- per-operation decisions ------------------------------------------

    def on_read(self, ppa: int) -> Optional[ReadFault]:
        """Decide whether the read at ``ppa`` returns raw bit errors."""
        config = self.config
        if config.read_fault_rate <= 0.0:
            return None
        if self._read_rng.random() >= config.read_fault_rate:
            return None
        self.stats.read_faults += 1
        severity = self._read_rng.random()
        if severity < config.read_hard_share:
            self.stats.read_faults_hard += 1
            return ReadFault(ppa=ppa, retries_needed=0, hard=True)
        if severity < config.read_hard_share + config.read_transient_share:
            retries = 1 + int(
                self._read_rng.integers(0, config.transient_max_retries)
            )
            self.stats.read_faults_transient += 1
            return ReadFault(ppa=ppa, retries_needed=retries)
        return ReadFault(ppa=ppa, retries_needed=0)

    def on_program(self, global_block: int) -> bool:
        """True when the next program into ``global_block`` must fail."""
        if self.config.program_fail_rate <= 0.0:
            return False
        if self._program_rng.random() >= self.config.program_fail_rate:
            return False
        self.stats.program_fails += 1
        return True

    def on_erase(self, global_block: int) -> bool:
        """True when the erase of ``global_block`` must fail (wear-out)."""
        if self.config.erase_fail_rate <= 0.0:
            return False
        if self._erase_rng.random() >= self.config.erase_fail_rate:
            return False
        self.stats.erase_fails += 1
        return True

    # -- device-lifetime events -------------------------------------------

    def factory_bad_blocks(self, num_blocks: int) -> List[int]:
        """The blocks stamped bad at manufacture, for an array of ``num_blocks``.

        Deterministic in the seed and independent of the per-operation
        streams; at most ``num_blocks - 1`` blocks are returned so a
        device always has at least one usable block.
        """
        count = min(self.config.factory_bad_blocks, max(0, num_blocks - 1))
        if count == 0:
            return []
        rng = derive_rng(self.config.seed, "faults", "factory-bad")
        chosen = rng.choice(num_blocks, size=count, replace=False)
        return sorted(int(block) for block in chosen)

    def power_loss_due(self, now: float) -> bool:
        """True exactly once, when ``now`` first reaches ``power_loss_at``."""
        at = self.config.power_loss_at
        if at is None or self._power_loss_fired or now < at:
            return False
        self._power_loss_fired = True
        self.stats.power_losses += 1
        return True

    @property
    def power_loss_pending(self) -> bool:
        """True while a configured power loss has not yet fired."""
        return self.config.power_loss_at is not None and not self._power_loss_fired
