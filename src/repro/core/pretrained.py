"""The library's default detector tree.

The bundled artefact (``pretrained_tree.json``) was produced by
:func:`repro.train.trainer.train_validated_tree` over the paper's Table I
*training* scenarios only — candidate trees are scored on stress-validation
runs built from training samples (including artificially slowed variants)
and the best is kept.  The Table I *testing* combinations are never touched
during training or selection, so every experiment that uses
:func:`default_tree` faces unknown ransomware exactly as the paper's
evaluation does.

Regenerate with ``python -m repro.train.pretrain``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.config import DetectorConfig
from repro.core.id3 import DecisionTree
from repro.rand import DEFAULT_SEED

#: The bundled artefact produced by the validated-training pipeline.
PRETRAINED_PATH = Path(__file__).with_name("pretrained_tree.json")

#: Training-run length (seconds) for the cached default tree; long enough
#: for every scenario to show both quiet and active phases.
DEFAULT_TRAIN_DURATION = 60.0

#: Runs per Table I combination; randomized onsets across runs expose each
#: background app both benign and under attack.
DEFAULT_TRAIN_RUNS = 3

_CACHE: Dict[Tuple[int, float, int, int], DecisionTree] = {}


def default_tree(
    seed: int = DEFAULT_SEED,
    duration: float = DEFAULT_TRAIN_DURATION,
    runs_per_scenario: int = DEFAULT_TRAIN_RUNS,
    config: Optional[DetectorConfig] = None,
) -> DecisionTree:
    """The library's default ID3 detector tree.

    Loads the bundled validated artefact when the default parameters are
    requested; otherwise (or when the artefact is missing) trains a fresh
    tree on the Table I training matrix and caches it per process.
    """
    config = config or DetectorConfig()
    key = (seed, duration, runs_per_scenario, config.max_tree_depth)
    tree = _CACHE.get(key)
    if tree is not None:
        return tree
    is_default = (
        seed == DEFAULT_SEED
        and duration == DEFAULT_TRAIN_DURATION
        and runs_per_scenario == DEFAULT_TRAIN_RUNS
        and config.max_tree_depth == DetectorConfig().max_tree_depth
    )
    if is_default and PRETRAINED_PATH.exists():
        tree = DecisionTree.load(PRETRAINED_PATH)
    else:
        from repro.train.trainer import train_from_scenarios
        from repro.workloads.catalog import training_scenarios

        tree = train_from_scenarios(
            training_scenarios(),
            seed=seed,
            duration=duration,
            runs_per_scenario=runs_per_scenario,
            config=config,
        )
    _CACHE[key] = tree
    return tree


def clear_cache() -> None:
    """Forget cached trees (mainly for tests)."""
    _CACHE.clear()
