"""Workload plumbing: regions, timing, determinism."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import LbaRegion
from repro.workloads.filespace import FileSpace
from repro.rand import derive_rng


class TestLbaRegion:
    def test_bounds(self):
        region = LbaRegion(10, 5)
        assert region.end == 15
        assert region.contains(10) and region.contains(14)
        assert not region.contains(15) and not region.contains(9)

    def test_sub_region(self):
        region = LbaRegion(10, 10)
        sub = region.sub(2, 3)
        assert sub.start == 12 and sub.length == 3

    def test_sub_region_overflow_rejected(self):
        with pytest.raises(WorkloadError):
            LbaRegion(0, 10).sub(5, 6)

    def test_rejects_bad_region(self):
        with pytest.raises(WorkloadError):
            LbaRegion(-1, 5)
        with pytest.raises(WorkloadError):
            LbaRegion(0, 0)


class TestFileSpace:
    def test_files_fill_region(self):
        region = LbaRegion(0, 1000)
        space = FileSpace(region, derive_rng(1, "fs"))
        assert len(space) > 10
        assert space.total_blocks <= region.length

    def test_files_are_disjoint_and_in_region(self):
        region = LbaRegion(100, 2000)
        space = FileSpace(region, derive_rng(2, "fs"))
        seen = set()
        for extent in space:
            for lba in range(extent.start_lba, extent.end_lba):
                assert lba not in seen
                assert region.contains(lba)
                seen.add(lba)

    def test_max_blocks_respected(self):
        space = FileSpace(LbaRegion(0, 5000), derive_rng(3, "fs"),
                          max_blocks=32)
        assert all(extent.length <= 32 for extent in space)

    def test_deterministic_from_seed(self):
        a = FileSpace(LbaRegion(0, 1000), derive_rng(4, "fs"))
        b = FileSpace(LbaRegion(0, 1000), derive_rng(4, "fs"))
        assert [(e.start_lba, e.length) for e in a] == \
            [(e.start_lba, e.length) for e in b]

    def test_shuffled_is_permutation(self):
        space = FileSpace(LbaRegion(0, 500), derive_rng(5, "fs"))
        order = space.shuffled(derive_rng(5, "order"))
        assert sorted(e.file_id for e in order) == [e.file_id for e in space]

    def test_sample_returns_member(self):
        space = FileSpace(LbaRegion(0, 500), derive_rng(6, "fs"))
        extent = space.sample(derive_rng(6, "pick"))
        assert extent in list(space)

    def test_tiny_region_rejected(self):
        with pytest.raises(WorkloadError):
            FileSpace(LbaRegion(0, 1), derive_rng(7, "fs"), mean_blocks=0)
