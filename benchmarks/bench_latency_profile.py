"""Detection latency per sample — the abstract's "within 10 s" claim."""

from repro.experiments import latency_profile


def test_latency_profile(benchmark, publish, pretrained_tree):
    result = benchmark.pedantic(
        lambda: latency_profile.run(repetitions=5, seed=11, duration=60.0,
                                    tree=pretrained_tree),
        rounds=1, iterations=1,
    )
    publish("latency_profile", result.render())
    # Every combination detected in every run...
    for row in result.rows:
        assert row.detected == row.runs, row.scenario
    # ...with every mean under the paper's 10-second bound; the slow
    # samples under contention (Jaff/CryptoShield) form the tail.
    assert result.worst_mean() <= 10.0