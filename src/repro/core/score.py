"""The window score of Fig. 4.

Each slice's decision-tree verdict (0/1) enters a ring of the last N
verdicts; the score is their sum, so it ranges 0..N and both rises and
decays as the window slides (Algorithm 1 lines 5-7).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import ConfigError


class ScoreTracker:
    """Sum of the last N decision-tree verdicts."""

    def __init__(self, window_slices: int) -> None:
        if window_slices < 1:
            raise ConfigError(f"window must hold >= 1 verdict, got {window_slices}")
        self._verdicts: Deque[int] = deque(maxlen=window_slices)
        self._score = 0
        self.window_slices = window_slices

    @property
    def score(self) -> int:
        """Current window score (0..N)."""
        return self._score

    def push(self, verdict: int) -> int:
        """Fold in the latest verdict and return the updated score."""
        if verdict not in (0, 1):
            raise ConfigError(f"verdict must be 0 or 1, got {verdict}")
        if len(self._verdicts) == self._verdicts.maxlen:
            self._score -= self._verdicts[0]
        self._verdicts.append(verdict)
        self._score += verdict
        return self._score

    def saturated_constant(self) -> "Optional[int]":
        """The verdict filling the whole ring, or None if mixed/unfull.

        O(1): a full ring is constant exactly when the score is 0 (all
        zeros) or N (all ones).  The detector's idle fast-forward uses this
        to prove the score can no longer change during an empty gap.
        """
        if len(self._verdicts) != self.window_slices:
            return None
        if self._score == 0:
            return 0
        if self._score == self.window_slices:
            return 1
        return None

    def push_constant(self, verdict: int, count: int) -> int:
        """Fold ``count`` repetitions of ``verdict`` into the ring.

        Only meaningful when the ring is already saturated with the same
        verdict (the fast-forward case) — the score is unchanged, but the
        call documents intent and keeps the ring's length bookkeeping
        trivially correct for any future non-saturated use.
        """
        for _ in range(min(count, self.window_slices)):
            self.push(verdict)
        return self._score

    def reset(self) -> None:
        """Clear all verdicts (after recovery, the window restarts clean)."""
        self._verdicts.clear()
        self._score = 0

    def __len__(self) -> int:
        return len(self._verdicts)
