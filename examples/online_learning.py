#!/usr/bin/env python
"""Online learning from the user's alarm decisions.

The deployment loop the paper describes asks the user to confirm every
alarm (§III-C).  Each answer is a free label, and this example closes the
loop: a site runs an unusual-but-benign workload (an aggressive nightly
re-indexing job) that the stock detector keeps flagging; after the admin
dismisses the alarm a few times, the retrained tree stops firing on it —
while a genuine attack still trips the alarm immediately.

Run:  python examples/online_learning.py
"""

from __future__ import annotations

from repro.blockdev.request import read, write
from repro.core.detector import RansomwareDetector
from repro.train.dataset import build_dataset
from repro.train.online import OnlineTrainer
from repro.workloads.catalog import training_scenarios
from repro.workloads.scenario import Scenario


def nightly_reindex(detector: RansomwareDetector) -> None:
    """A benign job that rewrites its freshly read index shards — the
    read-then-overwrite shape the detector is trained to distrust."""
    now = 0.0
    for shard in range(8):
        base = shard * 800
        for lba in range(base, base + 800):
            detector.observe(read(now, lba))
            detector.observe(write(now + 0.0004, lba))
            now += 1.0 / 800
    detector.tick(now + 1.0)


def real_attack(detector: RansomwareDetector) -> None:
    """A fast in-place encryptor for the final check."""
    from repro.workloads import LbaRegion, make_ransomware

    attack = make_ransomware("mole", LbaRegion(0, 60_000), start=2.0,
                             duration=30.0, seed=5)
    for request in attack.requests():
        detector.observe(request)
    detector.tick(40.0)


def main() -> None:
    print("building the base training matrix (Table I)...")
    base = build_dataset(training_scenarios(), seed=3, duration=45.0)
    trainer = OnlineTrainer(base, feedback_weight=40, refit_after=1)
    tree = trainer.refit()

    print("\nnight 1..4: the re-indexing job runs; the admin answers the "
          "alarm prompt")
    for night in range(1, 5):
        detector = RansomwareDetector(tree=tree)
        nightly_reindex(detector)
        if detector.alarm_raised:
            print(f"  night {night}: ALARM -> admin dismisses (false alarm)")
            refitted = trainer.record_dismissal(detector)
            if refitted is not None:
                tree = refitted
        else:
            print(f"  night {night}: quiet (the detector has learned the job)")
            break

    print(f"\nfeedback collected: {trainer.buffer.dismissals} dismissals, "
          f"{len(trainer.buffer)} labelled slices, "
          f"{trainer.refits} refits")

    print("\nfinal checks with the adapted tree:")
    detector = RansomwareDetector(tree=tree)
    nightly_reindex(detector)
    print(f"  re-indexing job: alarm={detector.alarm_raised} "
          f"(should be False)")
    detector = RansomwareDetector(tree=tree)
    real_attack(detector)
    print(f"  real ransomware: alarm={detector.alarm_raised} "
          f"(should be True)")


if __name__ == "__main__":
    main()
