"""Fig. 4 — sliding-window score behaviour around the attack onset."""

from repro.experiments import fig4


def test_fig4_score_timeline(benchmark, publish, pretrained_tree):
    result = benchmark.pedantic(
        lambda: fig4.run(seed=2, duration=40.0, tree=pretrained_tree),
        rounds=1, iterations=1,
    )
    publish("fig4_score", result.render())
    assert result.alarm_slice is not None
    # Alarm within one window of the onset.
    assert result.alarm_slice - result.onset <= 10.0
    scores = dict(result.scores)
    assert all(s == 0 for i, s in result.scores if i < result.onset - 1)
    assert max(scores.values()) >= result.threshold
