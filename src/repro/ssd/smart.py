"""SMART-style self-reporting and the custom host command interface.

§III-C (footnote 2): *"The modern storage interface standards provide a
way of adding user-defined commands so that the host and the storage
device exchange maintenance information ... a 'ransomware attack alarm'
can be added as a new command."*  This module implements that surface:

* :func:`smart_report` — a SMART-attribute-style health snapshot
  (alarm state, detector score, recovery-queue depth, GC counters, wear);
* :class:`HostCommandInterface` — the user-defined command set a host
  driver would issue: query the alarm, fetch details, approve recovery,
  or dismiss a false alarm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import DeviceError
from repro.ssd.device import SimulatedSSD


#: SMART-style attribute identifiers (vendor-specific range, as real
#: vendors use for custom health data).
ATTR_ALARM = 0xF0
ATTR_SCORE = 0xF1
ATTR_QUEUE_DEPTH = 0xF2
ATTR_PINNED_PAGES = 0xF3
ATTR_QUEUE_EVICTIONS = 0xF4
ATTR_GC_PAGE_COPIES = 0xF5
ATTR_ERASES = 0xF6
ATTR_WEAR_SPREAD = 0xF7
ATTR_DROPPED_WRITES = 0xF8
ATTR_RECOVERIES = 0xF9
#: Reliability attributes (the classic SMART media-health set, in the
#: same vendor-specific range).
ATTR_BAD_BLOCKS = 0xFA
ATTR_CORRECTED_READS = 0xFB
ATTR_UNCORRECTABLE_READS = 0xFC
ATTR_PROGRAM_FAILS = 0xFD
ATTR_POWER_LOSSES = 0xFE
ATTR_DEGRADED = 0xFF


def smart_report(device: SimulatedSSD, metrics: bool = False) -> Dict:
    """Build the SMART attribute table from live device state.

    With ``metrics=True`` (and an observability-enabled device) the
    vendor-specific attribute page grows a ``"metrics"`` section carrying
    the full registry snapshot — the modern "telemetry log page" analogue
    of the paper's custom-command surface.
    """
    wear = device.nand.wear_stats()
    score = device.detector.score if device.detector is not None else 0
    report: Dict = {
        ATTR_ALARM: int(device.alarm_raised),
        ATTR_SCORE: score,
        ATTR_QUEUE_DEPTH: len(device.ftl.queue),
        ATTR_PINNED_PAGES: device.ftl.pinned_pages(),
        ATTR_QUEUE_EVICTIONS: device.ftl.queue.evictions,
        ATTR_GC_PAGE_COPIES: device.ftl.stats.gc_page_copies,
        ATTR_ERASES: device.ftl.stats.erases,
        ATTR_WEAR_SPREAD: wear.spread,
        ATTR_DROPPED_WRITES: device.stats.dropped_writes,
        ATTR_RECOVERIES: len(device.rollback_reports),
        ATTR_BAD_BLOCKS: device.ftl.allocator.retired_blocks,
        ATTR_CORRECTED_READS: device.nand.reliability.corrected_reads,
        ATTR_UNCORRECTABLE_READS: device.nand.reliability.uncorrectable_reads,
        ATTR_PROGRAM_FAILS: device.nand.reliability.program_fails,
        ATTR_POWER_LOSSES: device.stats.power_losses,
        ATTR_DEGRADED: int(device.degraded),
    }
    if metrics and device.obs.enabled:
        device.refresh_obs_metrics()
        report["metrics"] = device.obs.metrics.to_dict()
    return report


class HostCommand(enum.Enum):
    """The user-defined commands of the paper's notification protocol."""

    QUERY_ALARM = "query_alarm"
    ALARM_DETAILS = "alarm_details"
    APPROVE_RECOVERY = "approve_recovery"
    DISMISS_ALARM = "dismiss_alarm"
    SMART_READ = "smart_read"


@dataclass
class CommandResult:
    """A command's response payload."""

    ok: bool
    data: Dict


class HostCommandInterface:
    """The host side of the alarm/recovery handshake (§III-C).

    The flow the paper describes: the device raises the alarm and goes
    read-only; the host's integrated application asks the user; the user
    either approves recovery (mapping-table rollback, then reboot and
    clean up with anti-virus) or dismisses a false alarm.
    """

    def __init__(self, device: SimulatedSSD) -> None:
        self.device = device

    def execute(self, command: HostCommand) -> CommandResult:
        """Dispatch one host command."""
        if command is HostCommand.QUERY_ALARM:
            return CommandResult(ok=True,
                                 data={"alarm": self.device.alarm_raised})
        if command is HostCommand.ALARM_DETAILS:
            return self._alarm_details()
        if command is HostCommand.APPROVE_RECOVERY:
            return self._approve_recovery()
        if command is HostCommand.DISMISS_ALARM:
            self.device.dismiss_alarm()
            return CommandResult(ok=True, data={"alarm": False})
        if command is HostCommand.SMART_READ:
            return CommandResult(ok=True, data=smart_report(self.device))
        raise DeviceError(f"unknown host command: {command!r}")

    def _alarm_details(self) -> CommandResult:
        detector = self.device.detector
        if detector is None or detector.alarm_event is None:
            return CommandResult(ok=False, data={"error": "no alarm pending"})
        event = detector.alarm_event
        return CommandResult(
            ok=True,
            data={
                "slice_index": event.slice_index,
                "score": event.score,
                "threshold": detector.config.threshold,
                "features": event.features.as_dict(),
                "read_only": self.device.read_only,
            },
        )

    def _approve_recovery(self) -> CommandResult:
        if not self.device.alarm_raised:
            return CommandResult(ok=False, data={"error": "no alarm pending"})
        report = self.device.recover()
        return CommandResult(
            ok=True,
            data={
                "mapping_updates": report.mapping_updates,
                "lbas_restored": report.lbas_restored,
                "lbas_unmapped": report.lbas_unmapped,
                "reboot_required": True,  # the paper asks users to reboot
            },
        )
