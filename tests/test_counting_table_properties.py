"""Seeded-random invariant soak of the counting table (~10k ops per seed).

This is the safety net under the hot-path rewrite (expiry buckets,
free-list entry store, running WL total): after every burst of mixed
read / write / expire traffic, the full set of ``_index``/entry-store
invariants must hold — every indexed LBA is covered by its entry, every
entry's span is indexed back to itself (so runs never overlap), the hash
population equals the sum of run lengths, and the running aggregates match
a from-scratch recount.

Deliberately hypothesis-free: plain ``random.Random(seed)`` so a failure
reproduces with nothing but the seed in the assertion message.
"""

from __future__ import annotations

import random

import pytest

from repro.core.counting_table import (
    HASH_ENTRY_SIZE_BYTES,
    MAX_RUN_BLOCKS,
    TABLE_ENTRY_SIZE_BYTES,
    CountingTable,
)


def check_invariants(table: CountingTable, context: str) -> None:
    entries = list(table)
    # Iteration yields each live entry exactly once and len() agrees.
    assert len(entries) == len(table), context
    assert len(set(map(id, entries))) == len(entries), context

    covered = {}
    total_rl = 0
    total_wl = 0
    for entry in entries:
        assert 1 <= entry.rl <= MAX_RUN_BLOCKS, f"{context}: rl {entry.rl}"
        assert entry.wl >= 0, context
        total_rl += entry.rl
        total_wl += entry.wl
        for lba in range(entry.lba, entry.end_lba):
            # No two runs overlap: each LBA belongs to at most one entry...
            assert lba not in covered, f"{context}: overlap at LBA {lba}"
            covered[lba] = entry
            # ...and the index maps the entry's whole span back to it.
            assert table.entry_for(lba) is entry, (
                f"{context}: index miss for LBA {lba}"
            )

    # The index holds nothing beyond the live entries' spans.
    assert table.hash_entries == total_rl == len(covered), context

    # Running aggregates equal a from-scratch recount.
    if entries:
        assert table.mean_wl() == total_wl / len(entries), context
    else:
        assert table.mean_wl() == 0.0, context
    assert table.memory_bytes() == (
        total_rl * HASH_ENTRY_SIZE_BYTES
        + len(entries) * TABLE_ENTRY_SIZE_BYTES
    ), context


@pytest.mark.parametrize("seed", [1, 7, 2018, 0xC0FFEE])
def test_mixed_traffic_soak(seed):
    rng = random.Random(seed)
    table = CountingTable()
    slice_index = 0
    # Weighted op mix: mostly reads (sequential and random), a solid share
    # of writes (overwrites + cold misses), periodic expiry as the window
    # slides, and the occasional full reset.
    for step in range(10_000):
        roll = rng.random()
        if roll < 0.45:
            table.record_read(rng.randrange(0, 600), slice_index)
        elif roll < 0.60:
            # Sequential scan fragment, ascending or descending.
            start = rng.randrange(0, 580)
            span = range(start, start + rng.randrange(2, 12))
            for lba in (span if rng.random() < 0.5 else reversed(span)):
                table.record_read(lba, slice_index)
        elif roll < 0.90:
            table.record_write(rng.randrange(0, 600), slice_index)
        elif roll < 0.97:
            slice_index += 1
            table.expire(slice_index - rng.randrange(1, 12))
        elif roll < 0.995:
            # Ransomware-style read-then-overwrite burst.
            start = rng.randrange(0, 580)
            for lba in range(start, start + rng.randrange(2, 10)):
                table.record_read(lba, slice_index)
                table.record_write(lba, slice_index)
        else:
            table.clear()
        if step % 500 == 499:
            check_invariants(table, f"seed={seed} step={step}")
    check_invariants(table, f"seed={seed} final")
    # Total expiry leaves a truly empty table (free-list fully recycled).
    table.expire(slice_index + 100)
    check_invariants(table, f"seed={seed} post-expiry")
    assert len(table) == 0 and table.hash_entries == 0


def test_stale_slices_fully_evicted_after_expire():
    """expire(k) leaves no entry with slice_index < k, regardless of how
    buckets were populated or reused."""
    rng = random.Random(123)
    table = CountingTable()
    for slice_index in range(50):
        for _ in range(80):
            lba = rng.randrange(0, 400)
            if rng.random() < 0.7:
                table.record_read(lba, slice_index)
            else:
                table.record_write(lba, slice_index)
        cutoff = slice_index - 10
        table.expire(cutoff)
        assert all(e.slice_index >= cutoff for e in table)
        check_invariants(table, f"slice={slice_index}")
