"""I/O stress tools (the paper's IOMeter / DiskMark / HDTunePro scenarios).

Stress tools hammer multi-gigabyte test files with random and sequential
phases.  In the paper's taxonomy they are the *FRR* risk, not the FAR one:
their sheer volume slows a co-running ransomware down (dispersing its
overwrites across the window, which is what PWIO exists for), but they
produce almost no read-then-overwrite patterns themselves — each test
pattern runs against its own file/offset range, and the files are so large
that a write virtually never lands on a block read within the last 10 s.

At simulation scale a shared test region would manufacture collisions a
real tool never exhibits (our whole region is ~100x smaller than one real
test file), so each access pattern gets a disjoint quarter of the region —
which is exactly how the tools behave: separate test files, or separate
phases separated by minutes.  A small ``collision_rate`` knob reintroduces
the residual real-world collision probability.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.blockdev.request import IOMode, IORequest
from repro.errors import WorkloadError
from repro.workloads.base import LbaRegion, Workload

#: Supported tool personalities and their (write_ratio, sequential_ratio).
TOOL_MIXES = {
    "iometer": (0.33, 0.2),
    "diskmark": (0.5, 0.6),
    "hdtunepro": (0.25, 0.8),
}


class IoStressApp(Workload):
    """Random/sequential stress mix with per-pattern test areas.

    Args:
        tool: One of ``iometer``, ``diskmark``, ``hdtunepro``.
        ops_per_second: Average request rate.
        collision_rate: Probability that a write op deliberately targets
            the random-read area (models the residual chance, on a real
            multi-gigabyte test file, of writing a recently read block).
    """

    def __init__(
        self,
        region: LbaRegion,
        tool: str = "iometer",
        ops_per_second: float = 1000.0,
        collision_rate: float = 0.01,
        name: str = "",
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        tool = tool.lower()
        if tool not in TOOL_MIXES:
            raise WorkloadError(
                f"unknown stress tool {tool!r}; known: {sorted(TOOL_MIXES)}"
            )
        if not (0.0 <= collision_rate <= 1.0):
            raise WorkloadError("collision_rate must be in [0, 1]")
        super().__init__(name or tool, region, start, duration, seed, time_scale)
        self.tool = tool
        self.write_ratio, self.sequential_ratio = TOOL_MIXES[tool]
        self.ops_per_second = ops_per_second
        self.collision_rate = collision_rate
        quarter = max(1, region.length // 4)
        #: Disjoint per-pattern areas: random-read, random-write, seq-read,
        #: seq-write.
        self.rand_read_area = region.sub(0, quarter)
        self.rand_write_area = region.sub(quarter, quarter)
        self.seq_read_area = region.sub(2 * quarter, quarter)
        self.seq_write_area = region.sub(3 * quarter, region.length - 3 * quarter)
        self._seq_read_pos = 0
        self._seq_write_pos = 0

    def requests(self) -> Iterator[IORequest]:
        """Yield the tool's random/sequential read-write mix."""
        now = self.start
        while True:
            now += self._gap(self.ops_per_second)
            if now >= self.deadline:
                return
            is_write = self.rng.random() < self.write_ratio
            mode = IOMode.WRITE if is_write else IOMode.READ
            if is_write and self.rng.random() < self.collision_rate:
                # Residual collision: write a block from the random-read
                # area (possibly read within the window).
                lba = self.rand_read_area.start + int(
                    self.rng.integers(0, self.rand_read_area.length)
                )
                yield self._request(now, lba, mode, 1)
                continue
            if self.rng.random() < self.sequential_ratio:
                lba, length = self._sequential(mode)
            else:
                lba, length = self._random(mode)
            yield self._request(now, lba, mode, length)

    def _sequential(self, mode: IOMode) -> Tuple[int, int]:
        if mode is IOMode.READ:
            area, pos = self.seq_read_area, self._seq_read_pos
        else:
            area, pos = self.seq_write_area, self._seq_write_pos
        length = max(1, min(8, area.length - pos))
        lba = area.start + pos
        pos = (pos + length) % area.length
        if mode is IOMode.READ:
            self._seq_read_pos = pos
        else:
            self._seq_write_pos = pos
        return lba, length

    def _random(self, mode: IOMode) -> Tuple[int, int]:
        area = self.rand_read_area if mode is IOMode.READ else self.rand_write_area
        return area.start + int(self.rng.integers(0, area.length)), 1
