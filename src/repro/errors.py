"""Exception hierarchy for the SSD-Insider reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class NandError(ReproError):
    """Base class for NAND flash simulation errors."""


class ProgramError(NandError):
    """A page was programmed out of order or twice without an erase."""


class EraseError(NandError):
    """A block erase violated the chip's rules."""

class ReadError(NandError):
    """A page read targeted an unwritten or out-of-range page."""


class ProgramFailError(NandError):
    """A page program failed its verify step (injected media fault).

    The page is consumed but holds garbage; firmware must remap the write
    to another block and retire the failing one.
    """

    def __init__(self, message: str, ppa: int = -1) -> None:
        super().__init__(message)
        #: Flat physical page address of the burned page.
        self.ppa = ppa


class UncorrectableReadError(ReadError):
    """A page read stayed corrupt after exhausting the ECC retry budget."""

    def __init__(self, message: str, ppa: int = -1, retries: int = 0) -> None:
        super().__init__(message)
        #: Flat physical page address that could not be read.
        self.ppa = ppa
        #: Read retries spent before giving up.
        self.retries = retries


class AddressError(NandError):
    """A physical or logical address was out of range."""


class FtlError(ReproError):
    """Base class for flash-translation-layer errors."""


class OutOfSpaceError(FtlError):
    """The FTL ran out of free pages even after garbage collection."""


class ExhaustedRetriesError(FtlError):
    """Consecutive program failures exhausted the remap budget.

    Raised when every replacement block the FTL tried also failed to
    program — the media is dying faster than remapping can route around.
    The device reacts by locking down (graceful degradation)."""


class UnmappedReadError(FtlError):
    """A logical read targeted an LBA that was never written."""


class DeviceError(ReproError):
    """Base class for SSD device-level errors."""


class DeviceReadOnlyError(DeviceError):
    """A write was issued while the device is in read-only lockdown."""


class RecoveryError(DeviceError):
    """The rollback procedure could not complete."""


class DetectorError(ReproError):
    """Base class for detection-pipeline errors."""


class NotFittedError(DetectorError):
    """The decision tree was used before being trained."""


class TrainingError(DetectorError):
    """The training data was unusable (e.g. empty or single-class when a
    split was required)."""


class FilesystemError(ReproError):
    """Base class for SimpleFS errors."""


class FsFullError(FilesystemError):
    """No free blocks or inodes remain."""


class FsConsistencyError(FilesystemError):
    """An unrecoverable metadata inconsistency was found."""


class FileNotFoundFsError(FilesystemError):
    """The named file does not exist in the filesystem."""


class ObservabilityError(ReproError):
    """A metric or trace was registered or recorded incorrectly."""


class WorkloadError(ReproError):
    """A workload generator was configured or driven incorrectly."""


class TraceError(ReproError):
    """A trace file could not be parsed or written."""
