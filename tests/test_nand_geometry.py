"""NAND geometry and flat-PPA addressing."""

import pytest

from repro.errors import ConfigError
from repro.nand.geometry import NandGeometry


class TestDimensions:
    def test_tiny_counts(self):
        g = NandGeometry.tiny()
        assert g.num_chips == 1
        assert g.blocks_total == 8
        assert g.pages_total == 256

    def test_small_counts(self):
        g = NandGeometry.small()
        assert g.num_chips == 4
        assert g.pages_total == 4 * 64 * 64

    def test_capacity_bytes(self):
        g = NandGeometry.tiny()
        assert g.capacity_bytes == 256 * 4096

    def test_paper_prototype_is_512_gib_class(self):
        g = NandGeometry.paper_prototype()
        assert g.num_chips == 64
        assert g.capacity_bytes == 512 * 1024**3

    def test_rejects_zero_dimension(self):
        with pytest.raises(ConfigError):
            NandGeometry(channels=0)


class TestPpaAddressing:
    def test_roundtrip_all_pages_tiny(self):
        g = NandGeometry.tiny()
        for ppa in range(g.pages_total):
            chip, block, page = g.decompose(ppa)
            assert g.ppa(chip, block, page) == ppa

    def test_first_ppa(self):
        g = NandGeometry.small()
        assert g.ppa(0, 0, 0) == 0

    def test_ppa_block_stride(self):
        g = NandGeometry.small()
        assert g.ppa(0, 1, 0) == g.pages_per_block

    def test_ppa_chip_stride(self):
        g = NandGeometry.small()
        assert g.ppa(1, 0, 0) == g.pages_per_chip

    def test_block_of(self):
        g = NandGeometry.tiny()
        assert g.block_of(0) == 0
        assert g.block_of(g.pages_per_block) == 1

    def test_chip_of(self):
        g = NandGeometry.small()
        assert g.chip_of(g.pages_per_chip + 1) == 1

    def test_out_of_range_ppa(self):
        g = NandGeometry.tiny()
        with pytest.raises(ConfigError):
            g.decompose(g.pages_total)

    def test_out_of_range_components(self):
        g = NandGeometry.tiny()
        with pytest.raises(ConfigError):
            g.ppa(1, 0, 0)
        with pytest.raises(ConfigError):
            g.ppa(0, 8, 0)
        with pytest.raises(ConfigError):
            g.ppa(0, 0, 32)
