"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; this shim lets ``pip install -e .`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SSD-Insider (ICDCS 2018) reproduction: in-SSD ransomware "
        "detection and instant recovery"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"], "repro.core": ["pretrained_tree.json"]},
    include_package_data=True,
    python_requires=">=3.9",
    install_requires=["numpy"],
)
