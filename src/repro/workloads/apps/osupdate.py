"""OS-update workload (the paper's WindowUpdate scenario).

An OS update downloads packages (fresh sequential writes) and then patches
installed binaries — read the old file, write the new version over it —
which is an honest-to-goodness file-sized overwrite run.  That makes OS
update the benign workload whose per-file behaviour most resembles class-A
ransomware; what separates it is rate (a handful of files per minute, not
hundreds per second).
"""

from __future__ import annotations

from typing import Iterator

from repro.blockdev.request import IOMode, IORequest
from repro.workloads.base import LbaRegion, Workload
from repro.workloads.filespace import FileSpace


class OsUpdateApp(Workload):
    """Package download + slow in-place binary patching."""

    def __init__(
        self,
        region: LbaRegion,
        download_blocks_per_second: float = 300.0,
        patches_per_minute: float = 8.0,
        name: str = "windowupdate",
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__(name, region, start, duration, seed, time_scale)
        self.download_blocks_per_second = download_blocks_per_second
        self.patches_per_minute = patches_per_minute
        split = max(2, int(region.length * 0.5))
        self.binaries = FileSpace(region.sub(0, split), self.rng, mean_blocks=24)
        self.download_region = region.sub(split, region.length - split)

    def requests(self) -> Iterator[IORequest]:
        """Yield the download stream plus in-place binary patches."""
        now = self.start
        download_cursor = self.download_region.start
        next_patch = now + float(self.rng.exponential(60.0 / self.patches_per_minute))
        while True:
            now += self._gap(self.download_blocks_per_second / 8.0)
            if now >= self.deadline:
                return
            if now >= next_patch:
                # Patch one binary: read it, write the new version in place.
                extent = self.binaries.sample(self.rng)
                for lba in range(extent.start_lba, extent.end_lba, 8):
                    length = min(8, extent.end_lba - lba)
                    yield self._request(now, lba, IOMode.READ, length)
                for lba in range(extent.start_lba, extent.end_lba, 8):
                    length = min(8, extent.end_lba - lba)
                    yield self._request(now, lba, IOMode.WRITE, length)
                next_patch = now + float(
                    self.rng.exponential(60.0 / self.patches_per_minute)
                ) * self.time_scale
                continue
            # Otherwise keep streaming the download.
            length = self._clip_length(download_cursor, 8)
            length = min(length, self.download_region.end - download_cursor)
            yield self._request(now, download_cursor, IOMode.WRITE, max(1, length))
            download_cursor += max(1, length)
            if download_cursor >= self.download_region.end:
                download_cursor = self.download_region.start
