"""A day-in-the-life soak: the device survives a realistic multi-phase
story without a single false alarm, then survives the real thing."""

import pytest

from repro.fs import FilesystemRansomware, SimpleFS, fsck, looks_encrypted
from repro.nand.geometry import NandGeometry
from repro.rand import derive_rng
from repro.ssd.config import SSDConfig
from repro.ssd.device import SimulatedSSD
from repro.workloads.scenario import Scenario


@pytest.fixture(scope="module")
def story(pretrained_tree):
    """Run the whole story once; the tests assert different phases."""
    config = SSDConfig(
        geometry=NandGeometry(channels=2, ways=4, blocks_per_chip=128,
                              pages_per_block=64),
        queue_capacity=16_000,
    )
    device = SimulatedSSD(config, tree=pretrained_tree)
    fs = SimpleFS(device, num_inodes=1024, metadata_flush_interval=4.0)
    fs.format()
    rng = derive_rng(2026, "story")
    log = {"false_alarm_phases": []}

    # Phase 1: install the user's documents.
    originals = {}
    for index in range(450):
        data = (f"Document {index}: ".encode() * 5_000)[
            : int(rng.integers(6_000, 60_000))
        ]
        fs.create(f"doc{index:04d}", data)
        originals[f"doc{index:04d}"] = data
    if device.alarm_raised:
        log["false_alarm_phases"].append("install")

    # Phase 2: a morning of office work — edits, saves, deletions.
    device.tick(device.clock.now + 12.0)
    for round_number in range(25):
        name = f"doc{int(rng.integers(0, 450)):04d}"
        content = fs.read_file(name)
        fs.overwrite(name, content + b" [edited]")
        originals[name] = content + b" [edited]"
        device.tick(device.clock.now + float(rng.uniform(0.3, 1.2)))
    if device.alarm_raised:
        log["false_alarm_phases"].append("office-work")

    # Phase 3: a backup job reads everything (no writes).
    for name in sorted(originals):
        fs.read_file(name)
    if device.alarm_raised:
        log["false_alarm_phases"].append("backup")

    # Phase 4: quiet evening.
    device.tick(device.clock.now + 20.0)
    if device.alarm_raised:
        log["false_alarm_phases"].append("idle")

    # Phase 5: the attack.
    attacker = FilesystemRansomware(fs, in_place=bool(rng.integers(0, 2)),
                                    seed=9)
    encrypted = attacker.run(stop_when=lambda: device.alarm_raised)
    log["attack_detected"] = device.alarm_raised
    log["files_encrypted_before_alarm"] = encrypted

    # Phase 6: recovery + fsck + audit.
    if device.alarm_raised:
        device.recover()
    log["fsck"] = fsck(device)
    audit = SimpleFS(device, num_inodes=1024)
    audit.mount()
    encrypted_left = mismatched = 0
    for name, data in originals.items():
        content = audit.read_file(name)
        if looks_encrypted(content):
            encrypted_left += 1
        elif content != data:
            mismatched += 1
    log["encrypted_left"] = encrypted_left
    log["mismatched"] = mismatched
    log["device"] = device
    log["audit_fs"] = audit
    return log


class TestStory:
    def test_no_false_alarms_through_the_day(self, story):
        assert story["false_alarm_phases"] == []

    def test_attack_detected_before_finishing(self, story):
        assert story["attack_detected"]
        assert story["files_encrypted_before_alarm"] < 450

    def test_all_corruption_resolved(self, story):
        assert story["fsck"].repaired

    def test_no_encrypted_files_left(self, story):
        assert story["encrypted_left"] == 0

    def test_every_document_back_including_morning_edits(self, story):
        assert story["mismatched"] == 0

    def test_life_goes_on(self, story):
        """After recovery the user keeps working on the same filesystem."""
        audit = story["audit_fs"]
        audit.create("post-incident-report", b"we were attacked; we lost nothing")
        assert audit.read_file("post-incident-report").startswith(b"we were")
        assert not story["device"].alarm_raised
