"""Mergeable log-bucketed (HDR-style) histograms.

Per-run JSON blobs of raw samples do not scale to a fleet: ten thousand
device runs each holding a million latency samples cannot be concatenated,
shipped, or compared.  What *does* scale is a histogram whose buckets are
defined by the **value domain alone** — independent of the data that
landed in them — because then any two histograms with the same parameters
merge by adding bucket counts, and the merge of N shards is bucket-exact
equal to the histogram of the concatenated samples.

:class:`LogHistogram` is that primitive.  Buckets are *log-linear* in the
style of HDR histograms: the value axis is split into powers of two
(octaves), and every octave is split into ``subbuckets`` equal-width
linear buckets.  The relative width of every bucket is therefore at most
``1 / subbuckets`` — with the default of 32 subbuckets, any quantile read
back from the histogram is within ~3% of the exact sample quantile, over
an unbounded dynamic range, at a memory cost of one dict entry per
*occupied* bucket.

Bucket indexing is computed with :func:`math.frexp`, so the mapping from
value to bucket is exact, platform-stable, and deterministic — the
property the merge guarantee rests on.

The compact form (:meth:`LogHistogram.to_compact` /
:meth:`LogHistogram.from_compact`) is a small JSON-ready dict holding the
parameters and the sparse bucket counts; round-tripping it is lossless.
:class:`~repro.obs.metrics.MetricsRegistry` adopts this class for its
latency/occupancy series via
:meth:`~repro.obs.metrics.MetricsRegistry.loghistogram`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError

#: Default linear subdivisions per power-of-two octave (~3% resolution).
DEFAULT_SUBBUCKETS = 32

#: Default smallest distinguishable value (1 ns when recording seconds).
DEFAULT_MIN_VALUE = 1e-9

#: Schema stamped into the compact form.
COMPACT_SCHEMA = "ssd-insider.loghist/v1"


class LogHistogram:
    """A mergeable log-linear histogram of non-negative samples.

    Args:
        subbuckets: Linear subdivisions per octave.  The relative width of
            every bucket — and therefore the worst-case relative quantile
            error — is ``1 / subbuckets``.
        min_value: Values at or below this (and all non-positive values)
            collapse into the dedicated underflow/zero bucket; everything
            above is resolved log-linearly.

    Two histograms merge only when both parameters match exactly.
    """

    __slots__ = ("subbuckets", "min_value", "counts", "zero_count",
                 "count", "sum", "min", "max")

    def __init__(
        self,
        subbuckets: int = DEFAULT_SUBBUCKETS,
        min_value: float = DEFAULT_MIN_VALUE,
    ) -> None:
        if subbuckets < 1:
            raise ObservabilityError(
                f"subbuckets must be >= 1, got {subbuckets}"
            )
        if min_value <= 0:
            raise ObservabilityError(
                f"min_value must be positive, got {min_value}"
            )
        self.subbuckets = int(subbuckets)
        self.min_value = float(min_value)
        #: Sparse bucket counts: bucket index -> occurrences.
        self.counts: Dict[int, int] = {}
        #: Samples at or below zero / below ``min_value``'s first bucket.
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording ---------------------------------------------------------

    def index_of(self, value: float) -> int:
        """Deterministic bucket index of a positive value.

        The value axis above ``min_value`` is split into octaves
        ``[2^q, 2^(q+1)) * min_value`` and each octave into ``subbuckets``
        linear slots; index ``q * subbuckets + slot``.
        """
        mantissa, exponent = math.frexp(value / self.min_value)
        if exponent < 1:
            # Below min_value: collapse into the first bucket.
            return 0
        return ((exponent - 1) * self.subbuckets
                + int((mantissa - 0.5) * 2 * self.subbuckets))

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """The ``[lower, upper)`` value range of one bucket index."""
        octave, slot = divmod(index, self.subbuckets)
        base = self.min_value * (2.0 ** octave)
        lower = base * (1.0 + slot / self.subbuckets)
        upper = base * (1.0 + (slot + 1) / self.subbuckets)
        return lower, upper

    def record(self, value: float, count: int = 1) -> None:
        """Fold ``count`` occurrences of ``value`` into the histogram."""
        if count <= 0:
            return
        value = float(value)
        self.count += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += count
            return
        index = self.index_of(value)
        self.counts[index] = self.counts.get(index, 0) + count

    # -- merging -----------------------------------------------------------

    def compatible_with(self, other: "LogHistogram") -> bool:
        """True when the two histograms share bucket parameters."""
        return (self.subbuckets == other.subbuckets
                and self.min_value == other.min_value)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Add ``other``'s contents into this histogram (returns self).

        Because buckets are defined by the value domain alone, the result
        is bucket-exact equal to recording both sample streams into one
        histogram, in any order.
        """
        if not self.compatible_with(other):
            raise ObservabilityError(
                f"cannot merge log histograms with different parameters: "
                f"({self.subbuckets}, {self.min_value}) vs "
                f"({other.subbuckets}, {other.min_value})"
            )
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # -- reading back ------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) of the recorded samples.

        The estimate is the arithmetic midpoint of the bucket containing
        the rank, so its relative error against the exact sample quantile
        is bounded by the bucket resolution ``1 / subbuckets``.
        """
        if not (0.0 <= q <= 1.0):
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                lower, upper = self.bucket_bounds(index)
                return (lower + upper) / 2.0
        return self.max if self.max is not None else 0.0

    def mean(self) -> float:
        """Arithmetic mean of the recorded samples (exact, from the sum)."""
        return self.sum / self.count if self.count else 0.0

    def occupied_buckets(self) -> Iterator[Tuple[int, int]]:
        """``(index, count)`` pairs, ascending by index."""
        for index in sorted(self.counts):
            yield index, self.counts[index]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(upper_bound, cumulative_count)`` pairs.

        Only occupied buckets are emitted (plus the implicit ``+Inf``), so
        the exposition stays proportional to the distribution's spread,
        not to the histogram's unbounded index range.
        """
        pairs: List[Tuple[float, int]] = []
        cumulative = self.zero_count
        if self.zero_count:
            pairs.append((self.min_value, cumulative))
        for index, count in self.occupied_buckets():
            cumulative += count
            pairs.append((self.bucket_bounds(index)[1], cumulative))
        pairs.append((math.inf, self.count))
        return pairs

    # -- compact form ------------------------------------------------------

    def to_compact(self) -> Dict[str, object]:
        """JSON-ready sparse form; round-trips losslessly."""
        return {
            "schema": COMPACT_SCHEMA,
            "subbuckets": self.subbuckets,
            "min_value": self.min_value,
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(index): count
                        for index, count in self.occupied_buckets()},
        }

    @classmethod
    def from_compact(cls, payload: Mapping[str, object]) -> "LogHistogram":
        """Rebuild a histogram from its :meth:`to_compact` form."""
        schema = payload.get("schema")
        if schema != COMPACT_SCHEMA:
            raise ObservabilityError(
                f"not a compact log histogram (schema {schema!r})"
            )
        hist = cls(
            subbuckets=int(payload["subbuckets"]),  # type: ignore[arg-type]
            min_value=float(payload["min_value"]),  # type: ignore[arg-type]
        )
        hist.zero_count = int(payload.get("zero_count", 0))  # type: ignore[arg-type]
        hist.count = int(payload.get("count", 0))  # type: ignore[arg-type]
        hist.sum = float(payload.get("sum", 0.0))  # type: ignore[arg-type]
        minimum = payload.get("min")
        maximum = payload.get("max")
        hist.min = None if minimum is None else float(minimum)  # type: ignore[arg-type]
        hist.max = None if maximum is None else float(maximum)  # type: ignore[arg-type]
        buckets = payload.get("buckets", {})
        if not isinstance(buckets, Mapping):
            raise ObservabilityError("compact form 'buckets' must be a mapping")
        hist.counts = {int(index): int(count)
                       for index, count in buckets.items()}
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return (self.subbuckets == other.subbuckets
                and self.min_value == other.min_value
                and self.counts == other.counts
                and self.zero_count == other.zero_count
                and self.count == other.count
                and self.sum == other.sum
                and self.min == other.min
                and self.max == other.max)

    def __repr__(self) -> str:
        return (f"LogHistogram(count={self.count}, "
                f"buckets={len(self.counts)}, sub={self.subbuckets})")
