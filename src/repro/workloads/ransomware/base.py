"""The generic crypto-ransomware block-level behaviour.

All of the paper's samples share one invariant (§III-A): *every* victim
file is read, encrypted, and its original blocks are overwritten soon after
— because leaving the plaintext recoverable would cost the attacker the
ransom.  What varies per sample is where the ciphertext lands
(:class:`OverwriteClass`), how fast the pipeline runs, and how bursty it is.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from repro.blockdev.request import IOMode, IORequest
from repro.errors import WorkloadError
from repro.workloads.base import LbaRegion, Workload
from repro.workloads.filespace import FileExtent, FileSpace


class OverwriteClass(enum.Enum):
    """How a sample destroys the original file (Scaife et al. taxonomy)."""

    #: Class A: ciphertext overwrites the original blocks directly.
    IN_PLACE = "A"
    #: Class B: ciphertext is written elsewhere, then the original blocks
    #: are wiped.
    OUT_OF_PLACE = "B"
    #: Class C: the original is deleted and its freed blocks overwritten;
    #: header-level this orders the wipe before the ciphertext write.
    DELETE_REWRITE = "C"


class Ransomware(Workload):
    """A parameterised crypto-ransomware request stream.

    Args:
        name: Sample label (stamped on requests for evaluation).
        region: LBA region holding victim files; classes B/C reserve the
            trailing ``scratch_fraction`` of it for ciphertext copies.
        blocks_per_second: Encryption pipeline throughput in 4-KB blocks/s.
        overwrite_class: Where the ciphertext lands.
        chunk_blocks: Largest single request the sample issues.
        pause_probability: Chance (per file) of going idle — slow samples
            like Jaff stall between files.
        pause_seconds: Mean idle time when a pause happens.
        scratch_fraction: Share of the region reserved for class-B/C copies.
        speed_jitter_sigma: Log-normal sigma of the per-file throughput
            factor.  Real samples speed up and slow down file by file
            (file type, key schedule, host contention), so per-slice
            overwrite counts spread over a wide range — which is also what
            lets a trained tree generalise to samples slower than any it
            saw in training.
    """

    def __init__(
        self,
        name: str,
        region: LbaRegion,
        blocks_per_second: float,
        overwrite_class: OverwriteClass = OverwriteClass.IN_PLACE,
        chunk_blocks: int = 8,
        pause_probability: float = 0.0,
        pause_seconds: float = 1.0,
        scratch_fraction: float = 0.35,
        mean_file_blocks: int = 16,
        speed_jitter_sigma: float = 0.8,
        start: float = 0.0,
        duration: float = 60.0,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        super().__init__(
            name=name,
            region=region,
            start=start,
            duration=duration,
            seed=seed,
            time_scale=time_scale,
        )
        if blocks_per_second <= 0:
            raise WorkloadError(f"blocks_per_second must be positive, got {blocks_per_second}")
        if chunk_blocks < 1:
            raise WorkloadError(f"chunk_blocks must be >= 1, got {chunk_blocks}")
        if not (0.0 <= pause_probability <= 1.0):
            raise WorkloadError("pause_probability must be in [0, 1]")
        if not (0.0 < scratch_fraction < 1.0):
            raise WorkloadError("scratch_fraction must be in (0, 1)")
        self.blocks_per_second = blocks_per_second
        self.overwrite_class = overwrite_class
        self.chunk_blocks = chunk_blocks
        self.pause_probability = pause_probability
        self.pause_seconds = pause_seconds
        self.speed_jitter_sigma = speed_jitter_sigma
        self._file_speed_factor = 1.0
        victim_blocks = max(2, int(region.length * (1.0 - scratch_fraction)))
        if victim_blocks >= region.length:
            victim_blocks = region.length - 1
        self.victim_region = region.sub(0, victim_blocks)
        self.scratch_region = region.sub(victim_blocks, region.length - victim_blocks)
        self.filespace = FileSpace(
            self.victim_region, self.rng, mean_blocks=mean_file_blocks
        )
        #: Victim files fully processed in the last generation pass.
        self.files_encrypted = 0

    # -- stream ------------------------------------------------------------

    def requests(self) -> Iterator[IORequest]:
        """Walk victim files in random order, emitting read-then-overwrite."""
        now = self.start
        scratch_cursor = self.scratch_region.start
        self.files_encrypted = 0
        for extent in self.filespace.shuffled(self.rng):
            if now >= self.deadline:
                return
            if self.pause_probability > 0 and self.rng.random() < self.pause_probability:
                now += float(self.rng.exponential(self.pause_seconds)) * self.time_scale
                if now >= self.deadline:
                    return
            if self.speed_jitter_sigma > 0:
                # Clip the factor: files vary, but a sample's pipeline never
                # persistently runs an order of magnitude off its rate.  The
                # asymmetric low bound matters: real samples do crawl when a
                # victim file is large or the host is busy, and those crawl
                # stretches are the training signal that teaches the tree
                # what *slow* ransomware looks like.
                self._file_speed_factor = float(
                    min(3.0, max(0.15,
                                 self.rng.lognormal(0.0, self.speed_jitter_sigma)))
                )
            for request, now in self._process_file(extent, now, scratch_cursor):
                if request.time >= self.deadline:
                    return
                yield request
            if self.overwrite_class is not OverwriteClass.IN_PLACE:
                scratch_cursor = self._advance_scratch(scratch_cursor, extent.length)
            self.files_encrypted += 1

    def _process_file(self, extent: FileExtent, now: float, scratch_cursor: int):
        """Yield ``(request, time_after)`` pairs for one victim file."""
        plan = self._file_plan(extent, scratch_cursor)
        for mode, lba, length in plan:
            now += self._chunk_gap(length)
            yield self._request(now, lba, mode, length), now

    def _file_plan(self, extent: FileExtent, scratch_cursor: int):
        """The ordered chunk list for one file, per the overwrite class."""
        reads = list(self._chunks(extent.start_lba, extent.length, IOMode.READ))
        wipe = list(self._chunks(extent.start_lba, extent.length, IOMode.WRITE))
        if self.overwrite_class is OverwriteClass.IN_PLACE:
            return reads + wipe
        copy_len = min(extent.length, self.scratch_region.end - scratch_cursor)
        copy = (
            list(self._chunks(scratch_cursor, copy_len, IOMode.WRITE))
            if copy_len > 0
            else []
        )
        if self.overwrite_class is OverwriteClass.OUT_OF_PLACE:
            return reads + copy + wipe
        # DELETE_REWRITE: the unlink + secure wipe lands before the copy.
        return reads + wipe + copy

    def _chunks(self, start_lba: int, length: int, mode: IOMode):
        cursor = start_lba
        end = start_lba + length
        while cursor < end:
            chunk = min(self.chunk_blocks, end - cursor)
            yield (mode, cursor, chunk)
            cursor += chunk

    def _chunk_gap(self, length: int) -> float:
        """Time one chunk costs: the pipeline moves each block through a
        read and a write, so each direction gets half the block budget."""
        base = length / (2.0 * self.blocks_per_second * self._file_speed_factor)
        return base * float(self.rng.uniform(0.7, 1.3)) * self.time_scale

    def _advance_scratch(self, cursor: int, used: int) -> int:
        cursor += used
        if cursor >= self.scratch_region.end - 1:
            cursor = self.scratch_region.start  # wrap: reuse scratch space
        return cursor
