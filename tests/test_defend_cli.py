"""The defend CLI."""

import pytest

from repro.tools import defend


class TestDefendCli:
    def test_fast_sample_perfect_recovery(self, capsys):
        code = defend.main(["--sample", "wannacry", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ALARM" in out
        assert "0.0% loss" in out
        assert "SMART" in out

    def test_no_recover_reports_damage(self, capsys):
        code = defend.main(["--sample", "mole", "--seed", "4",
                            "--no-recover"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rollback" not in out

    def test_unknown_sample_rejected(self):
        with pytest.raises(SystemExit):
            defend.main(["--sample", "badrabbit"])
