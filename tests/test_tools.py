"""The CLI utilities: tracegen, traceinfo, detect."""

import pytest

from repro.tools import detect, tracegen, traceinfo


@pytest.fixture
def attack_trace(tmp_path):
    path = tmp_path / "attack.jsonl"
    code = tracegen.main([
        "--ransomware", "wannacry", "--duration", "30",
        "--seed", "7", "--output", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture
def benign_trace(tmp_path):
    path = tmp_path / "benign.jsonl"
    code = tracegen.main([
        "--app", "websurfing", "--duration", "25",
        "--seed", "7", "--output", str(path),
    ])
    assert code == 0
    return path


class TestTracegen:
    def test_writes_trace(self, attack_trace, capsys):
        assert attack_trace.exists()
        assert attack_trace.stat().st_size > 0

    def test_requires_a_workload(self):
        with pytest.raises(SystemExit):
            tracegen.main(["--output", "x.jsonl"])

    def test_unknown_sample_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            tracegen.main([
                "--ransomware", "notpetya",
                "--output", str(tmp_path / "x.jsonl"),
            ])

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for path in (a, b):
            tracegen.main(["--app", "database", "--duration", "10",
                           "--seed", "3", "--output", str(path)])
        assert a.read_text() == b.read_text()


class TestTraceinfo:
    def test_summarises(self, attack_trace, capsys):
        assert traceinfo.main([str(attack_trace)]) == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "overwrite rate" in out
        assert "wannacry" in out


class TestDetect:
    def test_alarms_on_attack_trace(self, attack_trace, capsys):
        code = detect.main([str(attack_trace), "--quiet"])
        assert code == 2
        assert "ALARM" in capsys.readouterr().out

    def test_clean_on_benign_trace(self, benign_trace, capsys):
        code = detect.main([str(benign_trace), "--quiet"])
        assert code == 0
        assert "no ransomware" in capsys.readouterr().out

    def test_timeline_printed(self, attack_trace, capsys):
        detect.main([str(attack_trace)])
        out = capsys.readouterr().out
        assert "slice" in out and "score" in out

    def test_custom_threshold(self, attack_trace):
        # Threshold 10 needs ten positive slices in a 30 s run with a
        # mid-run onset — the fast sample still reaches it.
        code = detect.main([str(attack_trace), "--quiet",
                            "--threshold", "10"])
        assert code in (0, 2)

    def test_custom_tree_file(self, attack_trace, tmp_path):
        from repro.core.pretrained import default_tree

        tree_path = tmp_path / "tree.json"
        default_tree().save(tree_path)
        code = detect.main([str(attack_trace), "--quiet",
                            "--tree", str(tree_path)])
        assert code == 2
