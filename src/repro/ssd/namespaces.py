"""NVMe-style namespaces: per-tenant detection and selective recovery.

A multi-tenant SSD exposes one physical device as several logical
namespaces.  Extending SSD-Insider to that world raises two questions the
single-scope paper never has to answer:

* **Blast radius** — one tenant's ransomware must not freeze the others'
  I/O.  Each namespace therefore gets its *own* detector and its own
  read-only lockdown.
* **Selective recovery** — rolling the whole mapping table back would
  revert innocent tenants' recent writes.  The Insider FTL's rollback
  accepts an LBA range, so only the infected namespace rewinds; the
  recovery queue keeps the other tenants' backups queued.

The per-namespace detectors also see *less mixed* traffic than one global
detector would — tenant isolation is a detection feature, not just a
management one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.blockdev.request import IOMode, IORequest
from repro.core.config import DetectorConfig
from repro.core.detector import DetectionEvent, RansomwareDetector
from repro.core.id3 import DecisionTree
from repro.errors import AddressError, ConfigError, DeviceReadOnlyError
from repro.ftl.insider import RollbackReport
from repro.ssd.device import SimulatedSSD
from repro.units import BLOCK_SIZE


@dataclass
class NamespaceStats:
    """Per-namespace operation counters."""

    reads: int = 0
    writes: int = 0
    dropped_writes: int = 0


class Namespace:
    """One tenant's logical view of a shared device."""

    def __init__(
        self,
        manager: "NamespaceManager",
        index: int,
        start_lba: int,
        num_lbas: int,
        tree: Optional[DecisionTree],
        config: DetectorConfig,
    ) -> None:
        self.manager = manager
        self.index = index
        self.start_lba = start_lba
        self.num_lbas = num_lbas
        self.read_only = False
        self.stats = NamespaceStats()
        self.detector = RansomwareDetector(
            tree=tree, config=config, on_alarm=self._alarm_hook
        )
        self.rollback_reports: List[RollbackReport] = []

    @property
    def alarm_raised(self) -> bool:
        """True while this namespace has an unhandled alarm."""
        return self.detector.alarm_raised

    def _check(self, lba: int) -> int:
        if not (0 <= lba < self.num_lbas):
            raise AddressError(
                f"namespace {self.index}: LBA {lba} out of range "
                f"[0, {self.num_lbas})"
            )
        return self.start_lba + lba

    def read(self, lba: int, now: Optional[float] = None) -> bytes:
        """Read one block of this namespace."""
        device = self.manager.device
        physical = self._check(lba)
        timestamp = device._stamp(now)
        self.detector.observe(
            IORequest(time=timestamp, lba=lba, mode=IOMode.READ)
        )
        self.stats.reads += 1
        return device._read_block(physical)

    def write(self, lba: int, payload: Optional[bytes] = None,
              now: Optional[float] = None) -> None:
        """Write one block (dropped while this namespace is locked)."""
        device = self.manager.device
        physical = self._check(lba)
        timestamp = device._stamp(now)
        self.detector.observe(
            IORequest(time=timestamp, lba=lba, mode=IOMode.WRITE)
        )
        if self.read_only:
            self.stats.dropped_writes += 1
            return
        self.stats.writes += 1
        device._write_block(physical, payload)

    def tick(self, now: float) -> None:
        """Advance this namespace's detector through idle time."""
        self.manager.device.clock.advance_to(now)
        self.detector.tick(now)

    def recover(self) -> RollbackReport:
        """Roll back *this namespace only* and unlock it."""
        device = self.manager.device
        report = device.ftl.rollback(
            device.clock.now,
            lba_range=(self.start_lba, self.start_lba + self.num_lbas),
        )
        self.rollback_reports.append(report)
        self.read_only = False
        self.detector.reset()
        return report

    def dismiss_alarm(self) -> None:
        """False alarm: unlock without rolling back."""
        self.read_only = False
        self.detector.reset()

    def _alarm_hook(self, event: DetectionEvent) -> None:
        self.read_only = True
        if self.manager.on_alarm is not None:
            self.manager.on_alarm(self, event)


class NamespaceManager:
    """Splits a device's logical space into equal namespaces.

    Args:
        device: The shared device; its own global detector should be
            disabled (per-namespace detectors replace it).
        count: Number of namespaces.
        tree: Detector tree shared by all namespaces (defaults to the
            bundled one).
        config: Detector parameters.
        on_alarm: Callback ``(namespace, event)`` on any tenant's alarm.
    """

    def __init__(
        self,
        device: SimulatedSSD,
        count: int,
        tree: Optional[DecisionTree] = None,
        config: Optional[DetectorConfig] = None,
        on_alarm: Optional[Callable[[Namespace, DetectionEvent], None]] = None,
    ) -> None:
        if count < 1:
            raise ConfigError(f"need >= 1 namespace, got {count}")
        if device.num_lbas < count:
            raise ConfigError("device too small for that many namespaces")
        self.device = device
        self.on_alarm = on_alarm
        config = config or DetectorConfig()
        size = device.num_lbas // count
        self.namespaces: List[Namespace] = [
            Namespace(self, index, index * size, size, tree, config)
            for index in range(count)
        ]

    def __getitem__(self, index: int) -> Namespace:
        return self.namespaces[index]

    def __len__(self) -> int:
        return len(self.namespaces)

    @property
    def alarmed(self) -> List[Namespace]:
        """Namespaces with pending alarms."""
        return [ns for ns in self.namespaces if ns.alarm_raised]

    def capacity_bytes_per_namespace(self) -> int:
        """Each tenant's logical capacity."""
        return self.namespaces[0].num_lbas * BLOCK_SIZE
